// Multi-tenant idg-server daemon tests (DESIGN.md §17): the IDGJOB1
// protocol codecs, the admission-controlled queue with per-tenant quotas,
// and the daemon end to end — in-process Server on its own thread, real
// UNIX-domain sockets, real job threads. The drain contract (every
// accepted job completed, checkpointed, or reported failed; exit 0) and
// the completed-job byte-identity to a direct single-shot run are proved
// here and re-proved against the installed binaries by the CI server-soak
// job.
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "server/client.hpp"
#include "server/job.hpp"
#include "server/protocol.hpp"
#include "server/queue.hpp"
#include "server/server.hpp"

namespace idg::server {
namespace {

using namespace std::chrono_literals;

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + stem + "." + std::to_string(::getpid());
}

/// A tiny job that still runs a few hundred milliseconds: enough work
/// groups that cancellation always lands before completion in the
/// disconnect/drain tests, small enough to keep the suite fast.
JobSpec small_spec() {
  JobSpec spec;
  spec.nr_stations = 8;
  spec.nr_timesteps = 24;
  spec.nr_channels = 4;
  spec.grid_size = 256;
  spec.nr_cycles = 2;
  return spec;
}

// --- JobSpec ----------------------------------------------------------------

TEST(JobSpecTest, DefaultSpecValidatesAndCountsVisibilities) {
  JobSpec spec;
  EXPECT_NO_THROW(spec.validate());
  // 8 stations -> 28 baselines, x 24 timesteps x 4 channels.
  EXPECT_EQ(spec.nr_visibilities(), 28u * 24u * 4u);
}

TEST(JobSpecTest, RejectsDegenerateSpecsByName) {
  JobSpec spec;
  spec.nr_stations = 1;
  EXPECT_THROW(
      {
        try {
          spec.validate();
        } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("station count"),
                    std::string::npos);
          throw;
        }
      },
      Error);
  spec = JobSpec{};
  spec.grid_size = 300;  // not a power of two
  EXPECT_THROW(spec.validate(), Error);
  spec = JobSpec{};
  spec.nr_cycles = 0;
  EXPECT_THROW(spec.validate(), Error);
  spec = JobSpec{};
  spec.retries = 17;
  EXPECT_THROW(spec.validate(), Error);
}

// --- protocol codecs --------------------------------------------------------

TEST(JobProtocolTest, HelloRoundTripsAndChecksMagicAndVersion) {
  ClientHelloMsg hello;
  hello.tenant = "alice";
  const ClientHelloMsg back = decode_client_hello(encode_client_hello(hello));
  EXPECT_EQ(back.tenant, "alice");
  EXPECT_EQ(back.version, kJobProtocolVersion);

  std::string corrupt = encode_client_hello(hello);
  corrupt[0] ^= 0x40;  // break the magic
  EXPECT_THROW(decode_client_hello(corrupt), Error);

  ClientHelloMsg wrong;
  wrong.version = 999;
  wrong.tenant = "bob";
  EXPECT_THROW(decode_client_hello(encode_client_hello(wrong)), Error);

  ServerHelloMsg server_hello;
  server_hello.draining = 1;
  EXPECT_EQ(decode_server_hello(encode_server_hello(server_hello)).draining,
            1);
}

TEST(JobProtocolTest, SpecStatusAndTerminalMessagesRoundTrip) {
  JobSpec spec = small_spec();
  spec.retries = 3;
  spec.deadline_ms = 1234;
  spec.checkpoint = 1;
  spec.resume_job = 42;
  const JobSpec back = decode_job_spec(encode_job_spec(spec));
  EXPECT_EQ(back.nr_stations, spec.nr_stations);
  EXPECT_EQ(back.grid_size, spec.grid_size);
  EXPECT_EQ(back.retries, 3u);
  EXPECT_EQ(back.deadline_ms, 1234u);
  EXPECT_EQ(back.checkpoint, 1);
  EXPECT_EQ(back.resume_job, 42u);

  AcceptedMsg accepted{7, 2};
  EXPECT_EQ(decode_accepted(encode_accepted(accepted)).job, 7u);
  EXPECT_EQ(decode_accepted(encode_accepted(accepted)).queue_position, 2u);

  RejectedMsg rejected;
  rejected.reason = RejectReason::kQuotaInFlight;
  rejected.message = "tenant 'x' in-flight quota (2) exhausted";
  const RejectedMsg rback = decode_rejected(encode_rejected(rejected));
  EXPECT_EQ(rback.reason, RejectReason::kQuotaInFlight);
  EXPECT_EQ(rback.message, rejected.message);

  StatusMsg status{9, JobState::kRunning, "cycle 2 done"};
  const StatusMsg sback = decode_status(encode_status(status));
  EXPECT_EQ(sback.job, 9u);
  EXPECT_EQ(sback.state, JobState::kRunning);
  EXPECT_EQ(sback.detail, "cycle 2 done");

  JobFailedMsg failed;
  failed.job = 5;
  failed.state = JobState::kCheckpointed;
  failed.message = "drained";
  failed.checkpoint_job = 5;
  const JobFailedMsg fback = decode_job_failed(encode_job_failed(failed));
  EXPECT_EQ(fback.state, JobState::kCheckpointed);
  EXPECT_EQ(fback.checkpoint_job, 5u);

  EXPECT_EQ(decode_cancel(encode_cancel(CancelMsg{11})).job, 11u);
}

TEST(JobProtocolTest, ResultRoundTripsImagesExactly) {
  ResultMsg msg;
  msg.job = 3;
  msg.total_components = 17;
  msg.peak_history = {1.5f, 0.25f};
  msg.model_image = Array3D<cfloat>(2, 3, 3);
  msg.residual_image = Array3D<cfloat>(2, 3, 3);
  for (std::size_t i = 0; i < msg.model_image.size(); ++i) {
    msg.model_image.data()[i] = cfloat(static_cast<float>(i), -1.0f);
    msg.residual_image.data()[i] = cfloat(0.5f, static_cast<float>(i));
  }
  std::string payload = encode_result(msg);
  const ResultMsg back = decode_result(std::move(payload));
  EXPECT_EQ(back.total_components, 17u);
  ASSERT_EQ(back.peak_history.size(), 2u);
  ASSERT_EQ(back.model_image.size(), msg.model_image.size());
  EXPECT_EQ(std::memcmp(back.model_image.data(), msg.model_image.data(),
                        msg.model_image.bytes()),
            0);
  EXPECT_EQ(std::memcmp(back.residual_image.data(),
                        msg.residual_image.data(),
                        msg.residual_image.bytes()),
            0);
}

TEST(JobProtocolTest, TruncatedPayloadsFailByName) {
  std::string payload = encode_job_spec(small_spec());
  payload.resize(payload.size() - 4);
  EXPECT_THROW(decode_job_spec(payload), Error);
  std::string status = encode_status(StatusMsg{1, JobState::kQueued, "x"});
  status.resize(status.size() - 1);
  EXPECT_THROW(decode_status(status), Error);
}

TEST(JobProtocolTest, FramesShipOverSocketsAndRejectCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  write_message(fds[0], MsgType::kStatus,
                encode_status(StatusMsg{4, JobState::kRunning, "started"}));
  auto frame = read_message(fds[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(static_cast<MsgType>(frame->type), MsgType::kStatus);
  EXPECT_EQ(decode_status(frame->payload).job, 4u);

  // A flipped payload byte must surface as a CRC WireError, not bad data.
  const std::string payload = encode_cancel(CancelMsg{1});
  const std::uint32_t type = static_cast<std::uint32_t>(MsgType::kCancel);
  const std::uint64_t size = payload.size();
  std::string corrupted = payload;
  corrupted[0] ^= 0x1;
  std::uint32_t crc = crc32(&type, sizeof(type));
  crc = crc32(&size, sizeof(size), crc);
  crc = crc32(payload.data(), payload.size(), crc);  // CRC of the original
  ASSERT_EQ(::write(fds[0], &type, sizeof(type)),
            static_cast<ssize_t>(sizeof(type)));
  ASSERT_EQ(::write(fds[0], &size, sizeof(size)),
            static_cast<ssize_t>(sizeof(size)));
  ASSERT_EQ(::write(fds[0], corrupted.data(), corrupted.size()),
            static_cast<ssize_t>(corrupted.size()));
  ASSERT_EQ(::write(fds[0], &crc, sizeof(crc)),
            static_cast<ssize_t>(sizeof(crc)));
  EXPECT_THROW(read_message(fds[1]), WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- admission queue --------------------------------------------------------

PendingJob pending(std::uint64_t id, const std::string& tenant,
                   std::int32_t stations = 8) {
  PendingJob job;
  job.id = id;
  job.tenant = tenant;
  job.spec = small_spec();
  job.spec.nr_stations = stations;
  return job;
}

TEST(AdmissionQueueTest, BoundedQueueRejectsByName) {
  QuotaConfig quotas;
  quotas.max_queue_depth = 2;
  quotas.max_inflight_per_tenant = 10;
  AdmissionQueue queue(quotas);
  EXPECT_FALSE(queue.try_admit(pending(1, "a")).has_value());
  EXPECT_FALSE(queue.try_admit(pending(2, "b")).has_value());
  const auto rejection = queue.try_admit(pending(3, "c"));
  ASSERT_TRUE(rejection.has_value());
  EXPECT_EQ(rejection->reason, RejectReason::kQueueFull);
  EXPECT_NE(rejection->message.find("queue full"), std::string::npos);
}

TEST(AdmissionQueueTest, PerTenantInFlightQuotaCountsQueuedAndRunning) {
  QuotaConfig quotas;
  quotas.max_inflight_per_tenant = 2;
  quotas.max_queue_depth = 10;
  AdmissionQueue queue(quotas);
  EXPECT_FALSE(queue.try_admit(pending(1, "alice")).has_value());
  EXPECT_FALSE(queue.try_admit(pending(2, "alice")).has_value());
  auto rejection = queue.try_admit(pending(3, "alice"));
  ASSERT_TRUE(rejection.has_value());
  EXPECT_EQ(rejection->reason, RejectReason::kQuotaInFlight);
  EXPECT_NE(rejection->message.find("tenant 'alice'"), std::string::npos);
  // Another tenant is unaffected.
  EXPECT_FALSE(queue.try_admit(pending(4, "bob")).has_value());

  // Starting a job keeps it in flight: the quota still rejects...
  ASSERT_TRUE(queue.next().has_value());
  EXPECT_TRUE(queue.try_admit(pending(5, "alice")).has_value());
  // ...until the job finishes and releases.
  queue.release("alice", small_spec());
  EXPECT_FALSE(queue.try_admit(pending(6, "alice")).has_value());
}

TEST(AdmissionQueueTest, VisibilityQuotaIsSizeBased) {
  QuotaConfig quotas;
  quotas.max_queue_depth = 10;
  quotas.max_inflight_per_tenant = 10;
  // Room for one small job (28 * 24 * 4 = 2688 visibilities) but not two.
  quotas.max_visibilities_per_tenant = 3000;
  AdmissionQueue queue(quotas);
  EXPECT_FALSE(queue.try_admit(pending(1, "alice")).has_value());
  const auto rejection = queue.try_admit(pending(2, "alice"));
  ASSERT_TRUE(rejection.has_value());
  EXPECT_EQ(rejection->reason, RejectReason::kQuotaVisibilities);
  EXPECT_NE(rejection->message.find("visibility quota"), std::string::npos);
}

TEST(AdmissionQueueTest, FifoWithinTenantRoundRobinAcross) {
  QuotaConfig quotas;
  quotas.max_queue_depth = 10;
  quotas.max_inflight_per_tenant = 10;
  AdmissionQueue queue(quotas);
  // alice queues three jobs before bob's one; bob must not wait behind all
  // three.
  ASSERT_FALSE(queue.try_admit(pending(1, "alice")).has_value());
  ASSERT_FALSE(queue.try_admit(pending(2, "alice")).has_value());
  ASSERT_FALSE(queue.try_admit(pending(3, "alice")).has_value());
  ASSERT_FALSE(queue.try_admit(pending(4, "bob")).has_value());
  std::vector<std::uint64_t> order;
  while (auto job = queue.next()) order.push_back(job->id);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 4, 2, 3}));
}

TEST(AdmissionQueueTest, RemoveDropsAQueuedJobWithoutReleasingQuota) {
  QuotaConfig quotas;
  quotas.max_inflight_per_tenant = 1;
  AdmissionQueue queue(quotas);
  ASSERT_FALSE(queue.try_admit(pending(1, "alice")).has_value());
  PendingJob out;
  EXPECT_TRUE(queue.remove(1, &out));
  EXPECT_EQ(out.id, 1u);
  EXPECT_EQ(queue.queued(), 0u);
  EXPECT_FALSE(queue.remove(1));
  // Quota still charged until release() — the terminal-state accounting.
  EXPECT_TRUE(queue.try_admit(pending(2, "alice")).has_value());
  queue.release("alice", out.spec);
  EXPECT_FALSE(queue.try_admit(pending(3, "alice")).has_value());
}

// --- end-to-end daemon fixtures ---------------------------------------------

/// Runs an in-process Server on its own thread; request_stop() + join on
/// teardown gives every test the full drain path.
class ServerFixture {
 public:
  explicit ServerFixture(ServerConfig config) : config_(std::move(config)) {
    server_ = std::make_unique<Server>(config_);
    thread_ = std::thread([this]() { exit_code_ = server_->run(); });
    wait_until_listening();
  }

  ~ServerFixture() { stop(); }

  int stop() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
    return exit_code_;
  }

  Server& server() { return *server_; }
  const std::string& socket_path() const { return config_.socket_path; }

  /// Polls the counters until `pred` holds (the event loop ticks at
  /// 200 ms); fails the test after ~10 s.
  template <typename Pred>
  void wait_for_counters(Pred pred) {
    for (int i = 0; i < 200; ++i) {
      if (pred(snapshot_counters())) return;
      std::this_thread::sleep_for(50ms);
    }
    FAIL() << "server counters never reached the expected state";
  }

  obs::ServerCounters snapshot_counters() {
    const obs::MetricsSnapshot snapshot = server_->metrics();
    const auto it = snapshot.find("server");
    return it == snapshot.end() ? obs::ServerCounters{} : it->second.server;
  }

 private:
  void wait_until_listening() {
    for (int i = 0; i < 100; ++i) {
      if (::access(config_.socket_path.c_str(), F_OK) == 0) return;
      std::this_thread::sleep_for(20ms);
    }
    FAIL() << "server never created " << config_.socket_path;
  }

  ServerConfig config_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

ServerConfig test_config(const std::string& name) {
  ServerConfig config;
  config.socket_path = temp_path("idg_server_" + name + ".sock");
  config.checkpoint_dir = ::testing::TempDir();
  config.client_timeout_ms = 30000;
  return config;
}

ClientOptions client_options(const ServerFixture& fixture,
                             const std::string& tenant) {
  ClientOptions options;
  options.socket_path = fixture.socket_path();
  options.tenant = tenant;
  return options;
}

/// Raw protocol driver for tests that need asynchronous control the
/// synchronous Client deliberately does not expose (submit-then-walk-away,
/// deliberate mid-job disconnects, malformed frames).
class RawConn {
 public:
  RawConn(const ServerFixture& fixture, const std::string& tenant) {
    ClientOptions options = client_options(fixture, tenant);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << strerror(errno);
    // Bound every read: a misbehaving server surfaces as WireTimeout,
    // never as a hung test.
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ClientHelloMsg hello;
    hello.tenant = tenant;
    write_message(fd_, MsgType::kClientHello, encode_client_hello(hello));
    auto frame = read_message(fd_);
    EXPECT_TRUE(frame.has_value());
  }

  ~RawConn() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  std::uint64_t submit(const JobSpec& spec) {
    write_message(fd_, MsgType::kSubmit, encode_job_spec(spec));
    auto frame = read_message(fd_);
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(static_cast<MsgType>(frame->type), MsgType::kAccepted);
    return decode_accepted(frame->payload).job;
  }

  RejectedMsg submit_expect_rejection(const JobSpec& spec) {
    write_message(fd_, MsgType::kSubmit, encode_job_spec(spec));
    auto frame = read_message(fd_);
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(static_cast<MsgType>(frame->type), MsgType::kRejected);
    return decode_rejected(frame->payload);
  }

  /// Reads frames until the job's terminal result/job-failed arrives.
  JobFailedMsg read_until_failed() {
    while (true) {
      auto frame = read_message(fd_);
      if (!frame.has_value()) {
        ADD_FAILURE() << "connection closed before a terminal frame";
        return {};
      }
      if (static_cast<MsgType>(frame->type) == MsgType::kJobFailed) {
        return decode_job_failed(frame->payload);
      }
      EXPECT_EQ(static_cast<MsgType>(frame->type), MsgType::kStatus);
    }
  }

  /// Reads status frames until `detail` appears.
  void read_until_status(const std::string& detail) {
    while (true) {
      auto frame = read_message(fd_);
      ASSERT_TRUE(frame.has_value());
      ASSERT_EQ(static_cast<MsgType>(frame->type), MsgType::kStatus);
      if (decode_status(frame->payload).detail == detail) return;
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// --- end-to-end: completion and byte-identity -------------------------------

TEST(ServerEndToEndTest, CompletedJobIsByteIdenticalToDirectRun) {
  ServerFixture fixture(test_config("identity"));
  Client client(client_options(fixture, "alice"));
  client.connect();
  const JobSpec spec = small_spec();
  const SubmitOutcome outcome = client.submit(spec);
  ASSERT_FALSE(outcome.rejected);
  ASSERT_EQ(outcome.state, JobState::kCompleted);
  ASSERT_TRUE(outcome.result != nullptr);

  const clean::MajorCycleResult direct = run_imaging_job(spec, {});
  ASSERT_EQ(outcome.result->model_image.size(), direct.model_image.size());
  EXPECT_EQ(std::memcmp(outcome.result->model_image.data(),
                        direct.model_image.data(),
                        direct.model_image.bytes()),
            0);
  EXPECT_EQ(std::memcmp(outcome.result->residual_image.data(),
                        direct.residual_image.data(),
                        direct.residual_image.bytes()),
            0);
  EXPECT_EQ(outcome.result->total_components,
            static_cast<std::uint32_t>(direct.total_components));

  client.close();
  EXPECT_EQ(fixture.stop(), 0);
  const obs::ServerCounters counters = fixture.snapshot_counters();
  EXPECT_EQ(counters.jobs_admitted, 1u);
  EXPECT_EQ(counters.jobs_completed, 1u);
  EXPECT_EQ(counters.drained, 1u);
}

TEST(ServerEndToEndTest, StatsReportsTheV8SchemaWithAServerBlock) {
  ServerFixture fixture(test_config("stats"));
  Client client(client_options(fixture, "alice"));
  client.connect();
  ASSERT_EQ(client.submit(small_spec()).state, JobState::kCompleted);
  const std::string json = client.stats();
  EXPECT_NE(json.find("\"schema\": \"idg-obs/v8\""), std::string::npos);
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("server.tenant.alice"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_completed\": 1"), std::string::npos);
}

// --- end-to-end: admission control ------------------------------------------
//
// max_running = 0 pins every admitted job in the queue, making admission
// decisions fully deterministic (no races against job completion).

TEST(ServerEndToEndTest, QueueFullAndQuotaRejectionsAreNamedAndCounted) {
  ServerConfig config = test_config("admission");
  config.max_running = 0;
  config.quotas.max_queue_depth = 3;
  config.quotas.max_inflight_per_tenant = 2;
  ServerFixture fixture(config);

  RawConn a1(fixture, "alice");
  RawConn a2(fixture, "alice");
  RawConn a3(fixture, "alice");
  a1.submit(small_spec());
  a2.submit(small_spec());
  const RejectedMsg quota = a3.submit_expect_rejection(small_spec());
  EXPECT_EQ(quota.reason, RejectReason::kQuotaInFlight);
  EXPECT_NE(quota.message.find("quota"), std::string::npos);

  RawConn b1(fixture, "bob");
  RawConn b2(fixture, "bob");
  b1.submit(small_spec());
  const RejectedMsg full = b2.submit_expect_rejection(small_spec());
  EXPECT_EQ(full.reason, RejectReason::kQueueFull);
  EXPECT_NE(full.message.find("queue full"), std::string::npos);

  // Queued jobs are failed by name at drain; the exit stays 0.
  EXPECT_EQ(fixture.stop(), 0);
  const obs::ServerCounters counters = fixture.snapshot_counters();
  EXPECT_EQ(counters.jobs_admitted, 3u);
  EXPECT_EQ(counters.jobs_rejected, 2u);
  EXPECT_EQ(counters.quota_rejections, 1u);
  EXPECT_EQ(counters.queue_full_rejections, 1u);
  EXPECT_EQ(counters.jobs_failed, 3u);
  EXPECT_EQ(counters.queue_depth_peak, 3u);
}

TEST(ServerEndToEndTest, BadSpecsAndMissingResumeCheckpointsAreBadJobs) {
  ServerConfig config = test_config("badjob");
  config.max_running = 0;
  ServerFixture fixture(config);
  RawConn conn(fixture, "alice");
  JobSpec bad = small_spec();
  bad.grid_size = 300;
  EXPECT_EQ(conn.submit_expect_rejection(bad).reason, RejectReason::kBadJob);
  JobSpec resume = small_spec();
  resume.resume_job = 424242;
  const RejectedMsg rejection = conn.submit_expect_rejection(resume);
  EXPECT_EQ(rejection.reason, RejectReason::kBadJob);
  EXPECT_NE(rejection.message.find("no checkpoint"), std::string::npos);
  EXPECT_EQ(fixture.stop(), 0);
}

TEST(ServerEndToEndTest, CancelWhileQueuedReportsCancelled) {
  ServerConfig config = test_config("cancelqueued");
  config.max_running = 0;
  ServerFixture fixture(config);
  RawConn conn(fixture, "alice");
  const std::uint64_t job = conn.submit(small_spec());
  write_message(conn.fd(), MsgType::kCancel, encode_cancel(CancelMsg{job}));
  const JobFailedMsg failed = conn.read_until_failed();
  EXPECT_EQ(failed.job, job);
  EXPECT_EQ(failed.state, JobState::kCancelled);
  EXPECT_EQ(fixture.stop(), 0);
  EXPECT_EQ(fixture.snapshot_counters().jobs_cancelled, 1u);
}

TEST(ServerEndToEndTest, DeadlineFiresWhileJobIsQueuedButNotStarted) {
  // Satellite of the CancelToken edge-case suite: the per-job token is
  // created at ADMISSION, so a deadline can expire before the job ever
  // runs — it must surface as a reported cancellation, not a hang.
  ServerConfig config = test_config("queueddeadline");
  config.max_running = 0;
  ServerFixture fixture(config);
  RawConn conn(fixture, "alice");
  JobSpec spec = small_spec();
  spec.deadline_ms = 100;
  const std::uint64_t job = conn.submit(spec);
  const JobFailedMsg failed = conn.read_until_failed();
  EXPECT_EQ(failed.job, job);
  EXPECT_EQ(failed.state, JobState::kCancelled);
  EXPECT_NE(failed.message.find("while queued"), std::string::npos);
  EXPECT_EQ(fixture.stop(), 0);
  EXPECT_EQ(fixture.snapshot_counters().jobs_cancelled, 1u);
}

// --- end-to-end: disconnects and drain --------------------------------------

TEST(ServerEndToEndTest, MidJobDisconnectCancelsAndAccountsTheJob) {
  ServerConfig config = test_config("disconnect");
  ServerFixture fixture(config);
  {
    RawConn conn(fixture, "carol");
    JobSpec spec = small_spec();
    spec.nr_cycles = 8;  // long enough that the cancel always lands
    conn.submit(spec);
    conn.read_until_status("started");
    // Hard client death mid-job: the catalogued disconnect edge.
  }
  fixture.wait_for_counters([](const obs::ServerCounters& c) {
    return c.jobs_cancelled + c.jobs_completed >= 1;
  });
  EXPECT_EQ(fixture.stop(), 0);
  const obs::ServerCounters counters = fixture.snapshot_counters();
  EXPECT_EQ(counters.jobs_admitted, 1u);
  EXPECT_EQ(counters.jobs_cancelled, 1u) << "job finished before the "
                                            "disconnect-cancel landed";
}

TEST(ServerEndToEndTest, DrainCheckpointsRunningJobAndResumesByteIdentically) {
  const std::string dir = temp_path("idg_server_drainckpt");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  JobSpec spec = small_spec();
  spec.nr_cycles = 3;
  spec.checkpoint = 1;

  std::uint64_t job = 0;
  {
    ServerConfig config = test_config("drain");
    config.checkpoint_dir = dir;
    ServerFixture fixture(config);
    RawConn conn(fixture, "bob");
    job = conn.submit(spec);
    conn.read_until_status("cycle 1 done");
    fixture.server().request_stop();
    const JobFailedMsg failed = conn.read_until_failed();
    EXPECT_EQ(failed.state, JobState::kCheckpointed);
    EXPECT_EQ(failed.checkpoint_job, job);
    conn.close();
    EXPECT_EQ(fixture.stop(), 0);
    const obs::ServerCounters counters = fixture.snapshot_counters();
    EXPECT_EQ(counters.jobs_checkpointed, 1u);
    EXPECT_EQ(counters.drained, 1u);
  }

  // A fresh server resumes the drained checkpoint; the result must be
  // byte-identical to an uninterrupted single-shot run.
  {
    ServerConfig config = test_config("resume");
    config.checkpoint_dir = dir;
    ServerFixture fixture(config);
    Client client(client_options(fixture, "bob"));
    client.connect();
    JobSpec resume = spec;
    resume.resume_job = job;
    const SubmitOutcome outcome = client.submit(resume);
    ASSERT_EQ(outcome.state, JobState::kCompleted);
    JobSpec uninterrupted = spec;
    uninterrupted.checkpoint = 0;
    const clean::MajorCycleResult direct = run_imaging_job(uninterrupted, {});
    EXPECT_EQ(std::memcmp(outcome.result->model_image.data(),
                          direct.model_image.data(),
                          direct.model_image.bytes()),
              0);
    EXPECT_EQ(std::memcmp(outcome.result->residual_image.data(),
                          direct.residual_image.data(),
                          direct.residual_image.bytes()),
              0);
    client.close();
    EXPECT_EQ(fixture.stop(), 0);
  }
}

TEST(ServerEndToEndTest, ClientSeesDrainingRejectionsAfterStop) {
  ServerConfig config = test_config("drainreject");
  config.max_running = 0;
  ServerFixture fixture(config);
  RawConn conn(fixture, "alice");
  conn.submit(small_spec());
  fixture.server().request_stop();
  // The already-queued job is failed by name...
  const JobFailedMsg failed = conn.read_until_failed();
  EXPECT_EQ(failed.state, JobState::kFailed);
  EXPECT_NE(failed.message.find("draining"), std::string::npos);
  EXPECT_EQ(fixture.stop(), 0);
}

// --- fault injection --------------------------------------------------------

struct DisarmGuard {
  DisarmGuard() { fault::Injector::instance().disarm_all(); }
  ~DisarmGuard() { fault::Injector::instance().disarm_all(); }
};

#define SKIP_WITHOUT_INJECTION()                              \
  if (!fault::compiled_in()) {                                \
    GTEST_SKIP() << "build without -DIDG_FAULT_INJECTION=ON"; \
  }                                                           \
  DisarmGuard disarm_guard

TEST(ServerFaultTest, InjectedAdmissionFaultIsANamedRejection) {
  SKIP_WITHOUT_INJECTION();
  ServerConfig config = test_config("admitfault");
  config.max_running = 0;
  ServerFixture fixture(config);
  fault::Injector::instance().arm_from_spec("server.admit=throw:1");
  RawConn conn(fixture, "alice");
  const RejectedMsg rejection = conn.submit_expect_rejection(small_spec());
  EXPECT_EQ(rejection.reason, RejectReason::kBadJob);
  EXPECT_NE(rejection.message.find("server.admit"), std::string::npos);
  // The transient arm is spent: the next submit is admitted.
  conn.submit(small_spec());
  EXPECT_EQ(fixture.stop(), 0);
  const obs::ServerCounters counters = fixture.snapshot_counters();
  EXPECT_EQ(counters.jobs_rejected, 1u);
  EXPECT_EQ(counters.jobs_admitted, 1u);
}

TEST(ServerFaultTest, InjectedAcceptFaultIsCountedAndNonFatal) {
  SKIP_WITHOUT_INJECTION();
  ServerConfig config = test_config("acceptfault");
  config.max_running = 0;
  ServerFixture fixture(config);
  fault::Injector::instance().arm_from_spec("server.accept=throw:1");
  {
    // First connection: the server drops it before the hello exchange.
    Client client(client_options(fixture, "alice"));
    EXPECT_THROW(client.connect(), WireError);
  }
  // The server survives and keeps accepting.
  Client client(client_options(fixture, "alice"));
  client.connect();
  client.close();
  EXPECT_EQ(fixture.stop(), 0);
  EXPECT_EQ(fixture.snapshot_counters().accept_failures, 1u);
}

TEST(ServerFaultTest, InjectedProtocolFaultTakesTheDisconnectPath) {
  SKIP_WITHOUT_INJECTION();
  ServerConfig config = test_config("protofault");
  config.max_running = 0;
  ServerFixture fixture(config);
  RawConn conn(fixture, "alice");
  const std::uint64_t job = conn.submit(small_spec());
  EXPECT_GT(job, 0u);
  // Every server-side read now fails once: the next frame from this client
  // is treated as a disconnect, cancelling its queued job.
  fault::Injector::instance().arm_from_spec("server.protocol.read=throw:1");
  write_message(conn.fd(), MsgType::kCancel, encode_cancel(CancelMsg{job}));
  fixture.wait_for_counters([](const obs::ServerCounters& c) {
    return c.jobs_cancelled >= 1;
  });
  EXPECT_EQ(fixture.stop(), 0);
  EXPECT_EQ(fixture.snapshot_counters().jobs_cancelled, 1u);
}

TEST(ServerFaultTest, DrainDeadlineFaultSiteDoesNotBreakTheDrain) {
  SKIP_WITHOUT_INJECTION();
  ServerConfig config = test_config("drainfault");
  config.drain_deadline_ms = 1;  // force the deadline edge immediately
  ServerFixture fixture(config);
  fault::Injector::instance().arm_from_spec("server.drain.deadline=throw:1");
  RawConn conn(fixture, "alice");
  JobSpec spec = small_spec();
  spec.nr_cycles = 8;
  conn.submit(spec);
  conn.read_until_status("started");
  fixture.server().request_stop();
  const JobFailedMsg failed = conn.read_until_failed();
  EXPECT_EQ(failed.state, JobState::kCancelled);
  conn.close();
  EXPECT_EQ(fixture.stop(), 0) << "drain must exit 0 even when the "
                                  "deadline fault site fires";
  const obs::ServerCounters counters = fixture.snapshot_counters();
  EXPECT_EQ(counters.drain_timeouts, 1u);
  EXPECT_EQ(counters.jobs_cancelled, 1u);
}

}  // namespace
}  // namespace idg::server
