// Tests for the block-level GPU execution simulator: internal consistency,
// agreement with the closed-form roofline model, and the triple-buffering
// pipeline simulation.
#include <gtest/gtest.h>

#include "arch/gpusim.hpp"
#include "arch/machine.hpp"
#include "arch/roofline.hpp"
#include "idg/accounting.hpp"
#include "idg/plan.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;
using namespace idg::arch;

struct SimFixture {
  sim::Dataset ds;
  Parameters params;
  Plan plan;

  static SimFixture make(int stations = 16, int timesteps = 128,
                         int channels = 16) {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = stations;
    cfg.nr_timesteps = timesteps;
    cfg.nr_channels = channels;
    cfg.grid_size = 512;
    cfg.subgrid_size = 24;
    auto ds = sim::make_benchmark_dataset_no_vis(cfg);
    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = stations;
    params.kernel_size = 8;
    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    return {std::move(ds), params, std::move(plan)};
  }
};

TEST(GpuSimTest, UtilizationsAreFractions) {
  auto f = SimFixture::make();
  for (const auto& cfg : {pascal_sim(), fiji_sim()}) {
    for (const auto& r :
         {simulate_gridder(cfg, f.plan), simulate_degridder(cfg, f.plan)}) {
      EXPECT_GT(r.seconds, 0.0) << cfg.name;
      EXPECT_GT(r.fma_utilization, 0.0);
      EXPECT_LE(r.fma_utilization, 1.0001);
      EXPECT_LE(r.sfu_utilization, 1.0001);
      EXPECT_LE(r.shared_utilization, 1.0001);
      EXPECT_FALSE(r.bottleneck.empty());
    }
  }
}

TEST(GpuSimTest, PascalKernelsAreSharedMemoryBound) {
  // Fig 13's conclusion: on Pascal both kernels sit at the shared-memory
  // bandwidth bound; the simulator must identify the same bottleneck.
  auto f = SimFixture::make();
  const auto cfg = pascal_sim();
  EXPECT_EQ(simulate_gridder(cfg, f.plan).bottleneck, "shared");
  EXPECT_EQ(simulate_degridder(cfg, f.plan).bottleneck, "shared");
}

TEST(GpuSimTest, FijiKernelsAreAluBound) {
  // §VI-C1: Fiji evaluates sincos on the FMA ALUs — the kernels are
  // bounded by the (inflated) ALU issue stream, not shared memory.
  auto f = SimFixture::make();
  const auto cfg = fiji_sim();
  EXPECT_EQ(simulate_gridder(cfg, f.plan).bottleneck, "fma");
}

TEST(GpuSimTest, SimulatorAgreesWithClosedFormModel) {
  // Two independent derivations of kernel time (discrete block scheduling
  // vs analytic ceilings) must agree within tens of percent.
  auto f = SimFixture::make();
  const OpCounts gridder = gridder_op_counts(f.plan);
  const OpCounts degridder = degridder_op_counts(f.plan);

  const double pascal_model_g = modeled_seconds(pascal(), gridder);
  const double pascal_sim_g = simulate_gridder(pascal_sim(), f.plan).seconds;
  EXPECT_NEAR(pascal_sim_g / pascal_model_g, 1.0, 0.4);

  const double pascal_model_d = modeled_seconds(pascal(), degridder);
  const double pascal_sim_d =
      simulate_degridder(pascal_sim(), f.plan).seconds;
  EXPECT_NEAR(pascal_sim_d / pascal_model_d, 1.0, 0.4);

  // Fiji: the discrete scheduler pays tail and per-block overheads the
  // closed-form ceiling does not, so the band is wider.
  const double fiji_model_g = modeled_seconds(fiji(), gridder);
  const double fiji_sim_g = simulate_gridder(fiji_sim(), f.plan).seconds;
  EXPECT_NEAR(fiji_sim_g / fiji_model_g, 1.2, 0.6);
}

TEST(GpuSimTest, PascalGridderNearPaperPeakFraction) {
  auto f = SimFixture::make();
  const auto r = simulate_gridder(pascal_sim(), f.plan);
  // Counted-op throughput as fraction of the 9.22 TOps/s peak: the paper
  // reports 74% for the gridder; the simulator must land in that regime.
  const double frac = r.ops_per_second / (9.22e12);
  EXPECT_GT(frac, 0.55);
  EXPECT_LT(frac, 0.90);
}

TEST(GpuSimTest, MoreSmsShortenExecution) {
  auto f = SimFixture::make();
  auto cfg = pascal_sim();
  const double base = simulate_gridder(cfg, f.plan).seconds;
  cfg.nr_sms *= 2;
  const double doubled = simulate_gridder(cfg, f.plan).seconds;
  EXPECT_LT(doubled, base);
  EXPECT_NEAR(base / doubled, 2.0, 0.5);  // near-linear at this block count
}

TEST(GpuSimTest, HeterogeneousItemsCauseTailEffect) {
  // With very few blocks the list scheduler cannot balance: makespan per
  // block must exceed the perfectly-divided time.
  auto f = SimFixture::make(4, 16, 4);  // handful of subgrids
  auto cfg = pascal_sim();
  const auto few = simulate_gridder(cfg, f.plan);
  // Utilization suffers when blocks < slots.
  const double slots = static_cast<double>(cfg.nr_sms) * cfg.blocks_per_sm;
  if (static_cast<double>(f.plan.nr_subgrids()) < slots) {
    EXPECT_LT(few.shared_utilization, 0.8);
  }
}

TEST(GpuSimTest, GridderFasterThanDegridderOnPascal) {
  // The degridder moves more shared bytes per op (Fig 13) -> slower.
  auto f = SimFixture::make();
  const auto cfg = pascal_sim();
  EXPECT_LT(simulate_gridder(cfg, f.plan).seconds,
            simulate_degridder(cfg, f.plan).seconds);
}

TEST(TripleBufferSimTest, OverlapHidesTransfers) {
  auto f = SimFixture::make();
  // Re-plan with small work groups so the pipeline has stages to overlap.
  Parameters p = f.params;
  p.work_group_size = 8;
  Plan plan(p, f.ds.uvw, f.ds.frequencies, f.ds.baselines);
  ASSERT_GT(plan.nr_work_groups(), 4u);
  const auto r = simulate_triple_buffering(pascal_sim(), plan);
  EXPECT_GT(r.kernel_seconds, 0.0);
  EXPECT_GT(r.transfer_seconds, 0.0);
  // The pipelined wall time must beat the serial sum...
  EXPECT_LT(r.wall_seconds, r.kernel_seconds + r.transfer_seconds);
  // ... and cannot beat the kernel stream, nor half the transfer total
  // (HtoD and DtoH are two independent streams).
  EXPECT_GE(r.wall_seconds, r.kernel_seconds * 0.999);
  EXPECT_GE(r.wall_seconds, 0.5 * r.transfer_seconds * 0.999);
  EXPECT_GT(r.overlap_efficiency, 1.0);
}

TEST(TripleBufferSimTest, SlowPcieMakesTransfersDominate) {
  auto f = SimFixture::make();
  Parameters p = f.params;
  p.work_group_size = 8;
  Plan plan(p, f.ds.uvw, f.ds.frequencies, f.ds.baselines);
  auto cfg = pascal_sim();
  cfg.pcie_gbs = 0.05;  // pathological bus
  const auto r = simulate_triple_buffering(cfg, plan);
  EXPECT_GT(r.transfer_seconds, r.kernel_seconds);
  EXPECT_NEAR(r.wall_seconds, r.transfer_seconds,
              0.6 * r.transfer_seconds);
}

}  // namespace
