// Tests for imaging weights (natural / uniform / Briggs) and the image
// output substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/imageio.hpp"
#include "idg/image.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/weighting.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;

struct WeightFixture {
  sim::Dataset ds;

  static WeightFixture make() {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 10;
    cfg.nr_timesteps = 64;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    cfg.subgrid_size = 24;
    return {sim::make_benchmark_dataset(cfg)};
  }
};

TEST(WeightingTest, NaturalWeightsAreAllOne) {
  auto f = WeightFixture::make();
  auto w = compute_imaging_weights(Weighting::Natural, f.ds.uvw,
                                   f.ds.frequencies, f.ds.grid_size,
                                   f.ds.image_size);
  for (const float v : w) EXPECT_EQ(v, 1.0f);
}

TEST(WeightingTest, UniformWeightsFlattenCellDensity) {
  auto f = WeightFixture::make();
  auto w = compute_imaging_weights(Weighting::Uniform, f.ds.uvw,
                                   f.ds.frequencies, f.ds.grid_size,
                                   f.ds.image_size);
  // Summing the weights of all samples that share a grid cell must give 1
  // per occupied cell; total = number of occupied cells <= total samples.
  double total = 0.0;
  for (const float v : w) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    total += v;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, static_cast<double>(w.size()));
}

TEST(WeightingTest, BriggsInterpolatesBetweenSchemes) {
  auto f = WeightFixture::make();
  auto natural = compute_imaging_weights(Weighting::Natural, f.ds.uvw,
                                         f.ds.frequencies, f.ds.grid_size,
                                         f.ds.image_size);
  auto uniform = compute_imaging_weights(Weighting::Uniform, f.ds.uvw,
                                         f.ds.frequencies, f.ds.grid_size,
                                         f.ds.image_size);
  auto robust_pos = compute_imaging_weights(Weighting::Briggs, f.ds.uvw,
                                            f.ds.frequencies, f.ds.grid_size,
                                            f.ds.image_size, +2.0);
  auto robust_neg = compute_imaging_weights(Weighting::Briggs, f.ds.uvw,
                                            f.ds.frequencies, f.ds.grid_size,
                                            f.ds.image_size, -2.0);

  // R = +2 approaches natural (f^2 -> 0).
  double err_nat = 0.0;
  for (std::size_t i = 0; i < natural.size(); ++i) {
    err_nat = std::max(err_nat,
                       std::abs(static_cast<double>(robust_pos.data()[i]) -
                                natural.data()[i]));
  }
  EXPECT_LT(err_nat, 0.1);

  // R = -2 approaches uniform *up to an overall scale* (weights are
  // relative): for samples in dense cells (where d * f^2 >> 1),
  // briggs = 1/(1 + d f^2) ~ uniform / f^2, so the ratio briggs/uniform
  // must be nearly constant across those samples.
  double ratio_min = 1e30, ratio_max = 0.0;
  for (std::size_t i = 0; i < natural.size(); ++i) {
    const float u = uniform.data()[i];
    const float r = robust_neg.data()[i];
    if (u <= 0.0f || u > 0.01f) continue;  // keep dense cells (d >= 100)
    const double ratio = static_cast<double>(r) / u;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
  }
  ASSERT_LT(ratio_min, ratio_max);  // some dense cells existed
  EXPECT_LT(ratio_max / ratio_min, 1.2);

  // ... and it clearly departs from natural weighting.
  double mean_neg = 0.0;
  for (std::size_t i = 0; i < natural.size(); ++i)
    mean_neg += robust_neg.data()[i];
  mean_neg /= static_cast<double>(natural.size());
  EXPECT_LT(mean_neg, 0.5);
}

TEST(WeightingTest, ApplyScalesVisibilitiesAndReturnsSum) {
  auto f = WeightFixture::make();
  Array3D<float> weights(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                         f.ds.nr_channels());
  weights.fill(0.5f);
  const Visibility before = f.ds.visibilities(0, 0, 0);
  const double sum =
      apply_imaging_weights(f.ds.visibilities.view(), weights.cview());
  EXPECT_DOUBLE_EQ(sum, 0.5 * static_cast<double>(weights.size()));
  EXPECT_FLOAT_EQ(f.ds.visibilities(0, 0, 0).xx.real(),
                  0.5f * before.xx.real());
}

TEST(WeightingTest, ShapeMismatchThrows) {
  auto f = WeightFixture::make();
  Array3D<float> weights(1, 1, 1);
  EXPECT_THROW(
      apply_imaging_weights(f.ds.visibilities.view(), weights.cview()),
      Error);
}

TEST(WeightingTest, UniformWeightingSharpensPsf) {
  // The classic property: uniform weighting narrows the PSF main lobe
  // relative to natural weighting (less weight on the dense short-spacing
  // core -> more resolution).
  auto f = WeightFixture::make();

  Parameters params;
  params.grid_size = f.ds.grid_size;
  params.subgrid_size = 24;
  params.image_size = f.ds.image_size;
  params.nr_stations = 10;
  params.kernel_size = 8;
  Plan plan(params, f.ds.uvw, f.ds.frequencies, f.ds.baselines);
  auto aterms = sim::make_identity_aterms(1, 10, 24);
  Processor proc(params);

  auto psf_width = [&](Weighting scheme) {
    Array3D<Visibility> unit(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                             f.ds.nr_channels());
    const Visibility one{{1.0f, 0.0f}, {}, {}, {1.0f, 0.0f}};
    unit.fill(one);
    auto weights = compute_imaging_weights(scheme, f.ds.uvw,
                                           f.ds.frequencies, f.ds.grid_size,
                                           f.ds.image_size);
    const double wsum =
        apply_imaging_weights(unit.view(), weights.cview());
    Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
    proc.grid_visibilities(plan, f.ds.uvw.cview(), unit.cview(),
                           aterms.cview(), grid.view());
    auto psf = make_dirty_image(grid, wsum);
    // Second moment of |I| within a small box around the peak.
    const long c = static_cast<long>(params.grid_size) / 2;
    double m2 = 0.0, m0 = 0.0;
    for (long dy = -12; dy <= 12; ++dy) {
      for (long dx = -12; dx <= 12; ++dx) {
        const double v = std::abs(
            psf(0, static_cast<std::size_t>(c + dy),
                static_cast<std::size_t>(c + dx)).real());
        m0 += v;
        m2 += v * (dx * dx + dy * dy);
      }
    }
    return m2 / m0;
  };

  const double natural = psf_width(Weighting::Natural);
  const double uniform = psf_width(Weighting::Uniform);
  EXPECT_LT(uniform, natural);
}

// --- image I/O -----------------------------------------------------------------

TEST(ImageIoTest, StokesIPlaneExtraction) {
  Array3D<cfloat> cube(4, 4, 4);
  cube(0, 1, 2) = {3.0f, 1.0f};
  cube(3, 1, 2) = {1.0f, -1.0f};
  auto plane = stokes_i_plane(cube);
  EXPECT_FLOAT_EQ(plane(1, 2), 2.0f);
  EXPECT_FLOAT_EQ(plane(0, 0), 0.0f);
}

TEST(ImageIoTest, PgmRoundtripHeader) {
  Array2D<float> plane(16, 24);
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 24; ++x)
      plane(y, x) = static_cast<float>(x + y);
  const std::string path = "/tmp/idg_test_image.pgm";
  write_pgm(path, plane);
  auto header = read_pgm_header(path);
  EXPECT_EQ(header.width, 24u);
  EXPECT_EQ(header.height, 16u);
  EXPECT_EQ(header.maxval, 255);
  // File size: header + w*h payload bytes.
  EXPECT_GE(std::filesystem::file_size(path), 24u * 16u);
  std::remove(path.c_str());
}

TEST(ImageIoTest, PgmConstantImageDoesNotDivideByZero) {
  Array2D<float> plane(4, 4);
  plane.fill(7.0f);
  const std::string path = "/tmp/idg_test_flat.pgm";
  write_pgm(path, plane);
  EXPECT_EQ(read_pgm_header(path).width, 4u);
  std::remove(path.c_str());
}

TEST(ImageIoTest, CsvContainsAllRows) {
  Array2D<float> plane(3, 2);
  plane(2, 1) = 5.5f;
  const std::string path = "/tmp/idg_test_plane.csv";
  write_plane_csv(path, plane);
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  std::string last;
  while (std::getline(in, line)) {
    ++rows;
    last = line;
  }
  EXPECT_EQ(rows, 3);
  EXPECT_NE(last.find("5.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ImageIoTest, BadPathThrows) {
  Array2D<float> plane(2, 2);
  EXPECT_THROW(write_pgm("/nonexistent-dir/x.pgm", plane), Error);
  EXPECT_THROW(read_pgm_header("/nonexistent-dir/x.pgm"), Error);
}

}  // namespace
