// Correctness tests for the IDG core: taper, plan invariants, kernel phase
// conventions, gridder/degridder adjointness, and end-to-end accuracy
// against the direct (exact) predictor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <random>

#include "idg/accounting.hpp"
#include "idg/adder.hpp"
#include "idg/image.hpp"
#include "idg/kernels.hpp"
#include "idg/parameters.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/subgrid_fft.hpp"
#include "idg/taper.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"

namespace {

using namespace idg;

// --- taper -------------------------------------------------------------------

TEST(TaperTest, PswfIsOneAtCenterAndFallsOff) {
  EXPECT_NEAR(pswf(0.0), 1.0, 1e-6);
  EXPECT_GT(pswf(0.0), pswf(0.5));
  EXPECT_GT(pswf(0.5), pswf(0.9));
  EXPECT_GT(pswf(0.9), 0.0);
}

TEST(TaperTest, PswfIsEven) {
  for (double eta : {0.1, 0.3, 0.77, 0.95}) {
    EXPECT_DOUBLE_EQ(pswf(eta), pswf(-eta));
  }
}

TEST(TaperTest, PswfVanishesOutsideSupport) {
  EXPECT_EQ(pswf(1.5), 0.0);
  EXPECT_EQ(pswf(-2.0), 0.0);
}

TEST(TaperTest, PswfIsContinuousAcrossPieceBoundary) {
  EXPECT_NEAR(pswf(0.7499), pswf(0.7501), 1e-3);
}

TEST(TaperTest, GriddingFunctionVanishesAtEdge) {
  EXPECT_NEAR(pswf_gridding_function(1.0), 0.0, 1e-12);
  EXPECT_GT(pswf_gridding_function(0.0), 0.9);
}

TEST(TaperTest, TaperRasterIsSeparableAndPeaksAtCenter) {
  auto taper = make_taper(24);
  EXPECT_NEAR(taper(12, 12), 1.0f, 1e-5f);
  // Separability: taper(y,x) * taper(c,c) == taper(y,c) * taper(c,x).
  const float lhs = taper(5, 9) * taper(12, 12);
  const float rhs = taper(5, 12) * taper(12, 9);
  EXPECT_NEAR(lhs, rhs, 1e-5f);
}

TEST(TaperTest, CorrectionInvertsTaper) {
  auto taper = make_taper(32);
  auto corr = make_taper_correction(32);
  for (std::size_t y = 4; y < 28; ++y)
    for (std::size_t x = 4; x < 28; ++x)
      EXPECT_NEAR(taper(y, x) * corr(y, x), 1.0f, 1e-4f);
}

TEST(TaperTest, CorrectionClampedAtFieldEdge) {
  auto corr = make_taper_correction(32, 0.5);
  EXPECT_EQ(corr(0, 0), 0.0f);  // taper << 0.5 at the corner
}

// --- shared fixture -----------------------------------------------------------

struct Setup {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;

  static Setup make(int stations, int timesteps, int channels,
                    std::size_t grid, std::size_t subgrid,
                    std::size_t kernel_size, int aterm_interval = 1 << 20) {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = stations;
    cfg.nr_timesteps = timesteps;
    cfg.nr_channels = channels;
    cfg.grid_size = grid;
    cfg.subgrid_size = subgrid;
    cfg.integration_time_s = 4.0;
    auto ds = sim::make_benchmark_dataset_no_vis(cfg);

    Parameters params;
    params.grid_size = grid;
    params.subgrid_size = subgrid;
    params.image_size = ds.image_size;
    params.nr_stations = stations;
    params.kernel_size = kernel_size;
    params.aterm_interval = aterm_interval;
    params.max_timesteps_per_subgrid = 64;

    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    auto aterms = sim::make_identity_aterms(
        (timesteps + aterm_interval - 1) / aterm_interval, stations, subgrid);
    return {std::move(ds), params, std::move(plan), std::move(aterms)};
  }
};

// --- plan invariants ------------------------------------------------------------

TEST(PlanTest, CoversEveryVisibilityExactlyOnce) {
  auto s = Setup::make(6, 64, 8, 256, 24, 8);
  ASSERT_EQ(s.plan.nr_dropped_visibilities(), 0u);

  // Mark every (baseline, time, channel) covered by an item; each must be
  // covered exactly once and all of them must be covered.
  Array3D<int> covered(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                       s.ds.nr_channels());
  for (const WorkItem& item : s.plan.items()) {
    for (int t = 0; t < item.nr_timesteps; ++t)
      for (int c = 0; c < item.nr_channels; ++c)
        covered(static_cast<std::size_t>(item.baseline),
                static_cast<std::size_t>(item.time_begin + t),
                static_cast<std::size_t>(item.channel_begin + c)) += 1;
  }
  for (const int v : covered) EXPECT_EQ(v, 1);
  EXPECT_EQ(s.plan.nr_planned_visibilities(),
            s.ds.nr_baselines() * s.ds.nr_timesteps() * s.ds.nr_channels());
}

TEST(PlanTest, PatchesLieInsideGrid) {
  auto s = Setup::make(8, 64, 8, 256, 24, 8);
  const int n = static_cast<int>(s.params.subgrid_size);
  const int g = static_cast<int>(s.params.grid_size);
  for (const WorkItem& item : s.plan.items()) {
    EXPECT_GE(item.coord_x, 0);
    EXPECT_GE(item.coord_y, 0);
    EXPECT_LE(item.coord_x + n, g);
    EXPECT_LE(item.coord_y + n, g);
  }
}

TEST(PlanTest, MembersRespectKernelSupportMargin) {
  auto s = Setup::make(8, 64, 8, 256, 24, 8);
  // Every member visibility's uv pixel must lie within the subgrid minus
  // half the kernel support on each side.
  const double margin = static_cast<double>(s.params.kernel_size) / 2.0;
  const double n = static_cast<double>(s.params.subgrid_size);
  for (const WorkItem& item : s.plan.items()) {
    for (int t = 0; t < item.nr_timesteps; ++t) {
      const UVW& c = s.ds.uvw(static_cast<std::size_t>(item.baseline),
                              static_cast<std::size_t>(item.time_begin + t));
      for (int ch = 0; ch < item.nr_channels; ++ch) {
        const double f =
            s.ds.frequencies[static_cast<std::size_t>(item.channel_begin + ch)];
        const double u_pix = c.u * f / kSpeedOfLight * s.params.image_size +
                             static_cast<double>(s.params.grid_size) / 2.0;
        const double v_pix = c.v * f / kSpeedOfLight * s.params.image_size +
                             static_cast<double>(s.params.grid_size) / 2.0;
        const double du = u_pix - item.coord_x;
        const double dv = v_pix - item.coord_y;
        EXPECT_GE(du, margin - 1.0);
        EXPECT_LE(du, n - margin + 1.0);
        EXPECT_GE(dv, margin - 1.0);
        EXPECT_LE(dv, n - margin + 1.0);
      }
    }
  }
}

TEST(PlanTest, RespectsMaxTimestepsAndATermSlots) {
  auto s = Setup::make(6, 128, 4, 256, 24, 8, /*aterm_interval=*/32);
  for (const WorkItem& item : s.plan.items()) {
    EXPECT_LE(item.nr_timesteps, s.params.max_timesteps_per_subgrid);
    const int slot_begin = item.time_begin / 32;
    const int slot_last = (item.time_begin + item.nr_timesteps - 1) / 32;
    EXPECT_EQ(slot_begin, slot_last) << "item spans two A-term slots";
    EXPECT_EQ(item.aterm_slot, slot_begin);
  }
}

TEST(PlanTest, WorkGroupsPartitionItems) {
  auto s = Setup::make(8, 64, 8, 256, 24, 8);
  std::size_t total = 0;
  for (std::size_t g = 0; g < s.plan.nr_work_groups(); ++g) {
    auto group = s.plan.work_group(g);
    EXPECT_LE(group.size(), s.params.work_group_size);
    EXPECT_GT(group.size(), 0u);
    total += group.size();
  }
  EXPECT_EQ(total, s.plan.nr_subgrids());
}

TEST(PlanTest, WavenumbersMatchFrequencies) {
  auto s = Setup::make(4, 8, 4, 256, 24, 8);
  ASSERT_EQ(s.plan.wavenumbers().size(), s.ds.frequencies.size());
  for (std::size_t c = 0; c < s.ds.frequencies.size(); ++c) {
    EXPECT_NEAR(s.plan.wavenumbers()[c],
                2.0 * M_PI * s.ds.frequencies[c] / kSpeedOfLight,
                1e-3);
  }
}

TEST(PlanTest, AverageVisibilitiesPerSubgridIsPositive) {
  auto s = Setup::make(8, 64, 8, 256, 24, 8);
  EXPECT_GT(s.plan.avg_visibilities_per_subgrid(), 1.0);
}

TEST(PlanTest, BadBaselineStationThrows) {
  auto s = Setup::make(4, 8, 4, 256, 24, 8);
  Parameters p = s.params;
  p.nr_stations = 2;  // baselines reference stations >= 2
  EXPECT_THROW(Plan(p, s.ds.uvw, s.ds.frequencies, s.ds.baselines), Error);
}

// --- kernel phase convention -----------------------------------------------------

// A single visibility placed exactly on a grid cell must, after gridding
// and the subgrid FFT, produce its peak at exactly that cell, carrying the
// visibility's value times the taper's DC response.
TEST(KernelConventionTest, ExactCellVisibilityLandsOnItsCell) {
  Parameters params;
  params.grid_size = 128;
  params.subgrid_size = 16;
  params.image_size = 0.05;
  params.nr_stations = 2;
  params.kernel_size = 4;

  // Choose uvw so that u = 10 cells, v = -6 cells at wavenumber of a single
  // channel: u_lambda = cells / image_size.
  const double freq = 150e6;
  const double lambda = kSpeedOfLight / freq;
  const int cell_u = 10, cell_v = -6;
  Array2D<UVW> uvw(1, 1);
  uvw(0, 0) = {static_cast<float>(cell_u / params.image_size * lambda),
               static_cast<float>(cell_v / params.image_size * lambda), 0.0f};

  std::vector<Baseline> baselines = {{0, 1}};
  Plan plan(params, uvw, {freq}, baselines);
  ASSERT_EQ(plan.nr_subgrids(), 1u);
  const WorkItem& item = plan.items()[0];

  Array3D<Visibility> vis(1, 1, 1);
  const cfloat value{2.0f, -1.0f};
  vis(0, 0, 0) = {value, value, value, value};

  auto aterms = sim::make_identity_aterms(1, 2, params.subgrid_size);
  auto taper = make_taper(params.subgrid_size);
  KernelData data{uvw.cview(), plan.wavenumbers(), aterms.cview(),
                  taper.cview()};

  Array4D<cfloat> subgrids(1, 4, params.subgrid_size, params.subgrid_size);
  reference_kernels().grid(params, data, plan.items(), vis.cview(),
                           subgrids.view());
  subgrid_fft(SubgridFftDirection::ToFourier, subgrids.view(), 1);

  // Find the peak of polarization 0 in the patch.
  std::size_t peak_y = 0, peak_x = 0;
  float peak = -1.0f;
  for (std::size_t y = 0; y < params.subgrid_size; ++y) {
    for (std::size_t x = 0; x < params.subgrid_size; ++x) {
      const float a = std::abs(subgrids(0, 0, y, x));
      if (a > peak) {
        peak = a;
        peak_y = y;
        peak_x = x;
      }
    }
  }
  const int grid_x = item.coord_x + static_cast<int>(peak_x);
  const int grid_y = item.coord_y + static_cast<int>(peak_y);
  EXPECT_EQ(grid_x, cell_u + 64);
  EXPECT_EQ(grid_y, cell_v + 64);

  // The peak must carry the visibility value scaled by the taper's mean
  // (DC response of the taper kernel): patch_peak = V * mean(taper).
  double taper_mean = 0.0;
  for (const float t : taper) taper_mean += t;
  taper_mean /= static_cast<double>(taper.size());
  const cfloat expected = value * static_cast<float>(taper_mean);
  EXPECT_NEAR(std::abs(subgrids(0, 0, peak_y, peak_x) - expected), 0.0f,
              2e-3f * std::abs(expected));
}

// --- adjointness ------------------------------------------------------------------

// <G v, g> == <v, G+ g>: the degridding chain is the exact adjoint of the
// gridding chain. This single property pins down every phase sign, FFT
// direction, shift and scale in the pipeline.
TEST(AdjointTest, GridAndDegridAreAdjoint) {
  auto s = Setup::make(5, 24, 4, 256, 24, 8);
  Processor proc(s.params);

  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);

  // Random visibilities.
  Array3D<Visibility> vis(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                          s.ds.nr_channels());
  for (auto& v : vis)
    v = {{dist(rng), dist(rng)},
         {dist(rng), dist(rng)},
         {dist(rng), dist(rng)},
         {dist(rng), dist(rng)}};

  // Random grid.
  Array3D<cfloat> grid(4, s.params.grid_size, s.params.grid_size);
  for (auto& g : grid) g = {dist(rng), dist(rng)};

  // Forward: G v.
  Array3D<cfloat> gv(4, s.params.grid_size, s.params.grid_size);
  proc.grid_visibilities(s.plan, s.ds.uvw.cview(), vis.cview(),
                         s.aterms.cview(), gv.view());

  // Adjoint: G+ g.
  Array3D<Visibility> gtg(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                          s.ds.nr_channels());
  proc.degrid_visibilities(s.plan, s.ds.uvw.cview(), grid.cview(),
                           s.aterms.cview(), gtg.view());

  // <G v, g> over grid pixels.
  std::complex<double> lhs{};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    lhs += std::conj(std::complex<double>(gv.data()[i])) *
           std::complex<double>(grid.data()[i]);
  }
  // <v, G+ g> over visibility components.
  std::complex<double> rhs{};
  for (std::size_t i = 0; i < vis.size(); ++i) {
    for (int p = 0; p < kNrPolarizations; ++p) {
      rhs += std::conj(std::complex<double>(vis.data()[i][p])) *
             std::complex<double>(gtg.data()[i][p]);
    }
  }
  const double scale = std::max({1.0, std::abs(lhs), std::abs(rhs)});
  EXPECT_NEAR(lhs.real(), rhs.real(), 2e-3 * scale);
  EXPECT_NEAR(lhs.imag(), rhs.imag(), 2e-3 * scale);
}

// --- end-to-end accuracy ------------------------------------------------------------

// Degridding a model grid built from pixel-centred point sources must
// reproduce the direct (exact) prediction of those sources.
TEST(AccuracyTest, DegriddingMatchesDirectPrediction) {
  auto s = Setup::make(6, 32, 4, 256, 32, 16);

  // Sources exactly on master-grid pixel centres, well inside the field.
  const double dl = s.params.image_size / static_cast<double>(s.params.grid_size);
  sim::SkyModel sky = {
      sim::PointSource{static_cast<float>(20 * dl), static_cast<float>(-14 * dl), 1.0f},
      sim::PointSource{static_cast<float>(-33 * dl), static_cast<float>(8 * dl), 0.5f},
      sim::PointSource{0.0f, 0.0f, 0.25f},
  };
  auto expected = sim::predict_visibilities(sky, s.ds.uvw, s.ds.baselines,
                                            s.ds.obs);

  // Model image -> model grid -> degrid.
  auto model = sim::render_sky_image(sky, s.params.grid_size,
                                     s.params.image_size);
  auto grid = model_image_to_grid(model);

  Processor proc(s.params);
  Array3D<Visibility> predicted(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                s.ds.nr_channels());
  proc.degrid_visibilities(s.plan, s.ds.uvw.cview(), grid.cview(),
                           s.aterms.cview(), predicted.view());

  const double rms = sim::rms_amplitude(expected);
  const double err = sim::max_abs_difference(expected, predicted);
  EXPECT_LT(err, 0.02 * rms) << "max error " << err << " vs rms " << rms;
}

// Gridding directly-predicted visibilities of a point source must produce a
// dirty image peaking at the source pixel with the source flux.
TEST(AccuracyTest, GriddingRecoversPointSource) {
  auto s = Setup::make(6, 32, 4, 256, 32, 16);

  const double dl = s.params.image_size / static_cast<double>(s.params.grid_size);
  const int px = 24, py = -10;  // offsets from image centre, in pixels
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(px * dl),
                                        static_cast<float>(py * dl), 2.0f}};
  auto vis = sim::predict_visibilities(sky, s.ds.uvw, s.ds.baselines,
                                       s.ds.obs);

  Processor proc(s.params);
  Array3D<cfloat> grid(4, s.params.grid_size, s.params.grid_size);
  proc.grid_visibilities(s.plan, s.ds.uvw.cview(), vis.cview(),
                         s.aterms.cview(), grid.view());
  auto image = make_dirty_image(grid, s.plan.nr_planned_visibilities());

  const std::size_t cx = s.params.grid_size / 2 + px;
  const std::size_t cy = s.params.grid_size / 2 + py;
  EXPECT_NEAR(image(0, cy, cx).real(), 2.0f, 0.05f);

  // The peak must be the global maximum of the XX dirty image.
  float max_val = -1.0f;
  std::size_t max_x = 0, max_y = 0;
  for (std::size_t y = 8; y < s.params.grid_size - 8; ++y) {
    for (std::size_t x = 8; x < s.params.grid_size - 8; ++x) {
      if (image(0, y, x).real() > max_val) {
        max_val = image(0, y, x).real();
        max_x = x;
        max_y = y;
      }
    }
  }
  EXPECT_EQ(max_x, cx);
  EXPECT_EQ(max_y, cy);
}

// The W-term: sources away from the phase centre observed with substantial
// w must still degrid correctly (this is the correction IDG applies in the
// image domain — disabling it must visibly break the prediction).
TEST(AccuracyTest, WTermCorrectionMatters) {
  auto s = Setup::make(6, 32, 4, 256, 32, 16);

  const double dl = s.params.image_size / static_cast<double>(s.params.grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(80 * dl),
                                        static_cast<float>(70 * dl), 1.0f}};
  auto expected = sim::predict_visibilities(sky, s.ds.uvw, s.ds.baselines,
                                            s.ds.obs);
  auto model = sim::render_sky_image(sky, s.params.grid_size,
                                     s.params.image_size);
  auto grid = model_image_to_grid(model);

  Processor proc(s.params);
  Array3D<Visibility> predicted(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                s.ds.nr_channels());
  proc.degrid_visibilities(s.plan, s.ds.uvw.cview(), grid.cview(),
                           s.aterms.cview(), predicted.view());

  const double rms = sim::rms_amplitude(expected);
  EXPECT_LT(sim::max_abs_difference(expected, predicted), 0.03 * rms);

  // Break the w handling on purpose: zero all w coordinates in a copy used
  // for prediction only (the plan/grid stay w-aware). If the image-domain
  // w-correction were a no-op, this would not change anything.
  Array2D<UVW> uvw_no_w(s.ds.uvw.dims());
  for (std::size_t i = 0; i < s.ds.uvw.size(); ++i) {
    UVW c = s.ds.uvw.data()[i];
    c.w = 0.0f;
    uvw_no_w.data()[i] = c;
  }
  auto expected_no_w = sim::predict_visibilities(sky, uvw_no_w,
                                                 s.ds.baselines, s.ds.obs);
  EXPECT_GT(sim::max_abs_difference(expected, expected_no_w), 0.05 * rms)
      << "test data has too little w for this check to be meaningful";
}

// A-term corruption applied by the predictor must be removed by gridding
// with the same A-terms.
TEST(AccuracyTest, ATermCorrectionRecoversCorruptedVisibilities) {
  const int stations = 5, timesteps = 32, channels = 4;
  const std::size_t grid_size = 256, subgrid = 32;
  auto s = Setup::make(stations, timesteps, channels, grid_size, subgrid, 16,
                       /*aterm_interval=*/8);

  auto screens = sim::make_phase_screen_aterms(
      timesteps / 8, stations, subgrid, s.params.image_size, 0.8, 21);

  const double dl = s.params.image_size / static_cast<double>(grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(16 * dl),
                                        static_cast<float>(12 * dl), 1.5f}};

  // Corrupted observation.
  sim::ATermContext ctx{&screens, 8, s.params.image_size};
  auto corrupted = sim::predict_visibilities(sky, s.ds.uvw, s.ds.baselines,
                                             s.ds.obs, ctx);

  // Grid with the matching A-terms: the correction happens in the image
  // domain inside the gridder kernel.
  Processor proc(s.params);
  Array3D<cfloat> grid(4, grid_size, grid_size);
  proc.grid_visibilities(s.plan, s.ds.uvw.cview(), corrupted.cview(),
                         screens.cview(), grid.view());
  auto image = make_dirty_image(grid, s.plan.nr_planned_visibilities());

  const std::size_t cx = grid_size / 2 + 16;
  const std::size_t cy = grid_size / 2 + 12;
  EXPECT_NEAR(image(0, cy, cx).real(), 1.5f, 0.08f);

  // Control: gridding the corrupted data with identity A-terms must smear
  // the source (noticeably lower peak).
  Array3D<cfloat> grid2(4, grid_size, grid_size);
  proc.grid_visibilities(s.plan, s.ds.uvw.cview(), corrupted.cview(),
                         s.aterms.cview(), grid2.view());
  auto image2 = make_dirty_image(grid2, s.plan.nr_planned_visibilities());
  EXPECT_LT(image2(0, cy, cx).real(), image(0, cy, cx).real() - 0.05f);
}

// --- roundtrip ---------------------------------------------------------------------

TEST(RoundtripTest, DegridThenGridPreservesPointSourceImage) {
  auto s = Setup::make(6, 32, 4, 256, 32, 16);
  const double dl = s.params.image_size / static_cast<double>(s.params.grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(10 * dl),
                                        static_cast<float>(6 * dl), 1.0f}};
  auto model = sim::render_sky_image(sky, s.params.grid_size,
                                     s.params.image_size);
  auto grid = model_image_to_grid(model);

  Processor proc(s.params);
  Array3D<Visibility> vis(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                          s.ds.nr_channels());
  proc.degrid_visibilities(s.plan, s.ds.uvw.cview(), grid.cview(),
                           s.aterms.cview(), vis.view());

  Array3D<cfloat> regrid(4, s.params.grid_size, s.params.grid_size);
  proc.grid_visibilities(s.plan, s.ds.uvw.cview(), vis.cview(),
                         s.aterms.cview(), regrid.view());
  auto image = make_dirty_image(regrid, s.plan.nr_planned_visibilities());

  const std::size_t cx = s.params.grid_size / 2 + 10;
  const std::size_t cy = s.params.grid_size / 2 + 6;
  EXPECT_NEAR(image(0, cy, cx).real(), 1.0f, 0.05f);
}

// --- pipeline bookkeeping -------------------------------------------------------------

TEST(ProcessorTest, SinkCoversAllStages) {
  auto s = Setup::make(5, 16, 4, 256, 24, 8);
  Processor proc(s.params);
  Array3D<cfloat> grid(4, s.params.grid_size, s.params.grid_size);
  Array3D<Visibility> vis(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                          s.ds.nr_channels());

  obs::AggregateSink sink;
  proc.grid_visibilities(s.plan, s.ds.uvw.cview(), vis.cview(),
                         s.aterms.cview(), grid.view(), sink);
  proc.degrid_visibilities(s.plan, s.ds.uvw.cview(), grid.cview(),
                           s.aterms.cview(), vis.view(), sink);
  EXPECT_GT(sink.seconds(stage::kGridder), 0.0);
  EXPECT_GT(sink.seconds(stage::kDegridder), 0.0);
  EXPECT_GT(sink.seconds(stage::kSubgridFft), 0.0);
  EXPECT_GT(sink.seconds(stage::kAdder), 0.0);
  EXPECT_GT(sink.seconds(stage::kSplitter), 0.0);

  // The adder/splitter also report their actual grid+subgrid traffic.
  const auto snapshot = sink.snapshot();
  EXPECT_EQ(snapshot.at(stage::kAdder).moved_bytes,
            adder_moved_bytes(s.params, s.plan.nr_subgrids()));
  EXPECT_EQ(snapshot.at(stage::kSplitter).moved_bytes,
            splitter_moved_bytes(s.params, s.plan.nr_subgrids()));
}

TEST(AdderTest, SplitAfterAddRecoversIsolatedPatch) {
  Parameters params;
  params.grid_size = 64;
  params.subgrid_size = 8;
  params.image_size = 0.01;
  params.nr_stations = 2;
  params.kernel_size = 2;

  WorkItem item;
  item.coord_x = 10;
  item.coord_y = 20;
  std::vector<WorkItem> items = {item};

  Array4D<cfloat> subgrids(1, 4, 8, 8);
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : subgrids) v = {dist(rng), dist(rng)};

  Array3D<cfloat> grid(4, 64, 64);
  add_subgrids_to_grid(params, items, subgrids.cview(), grid.view());

  Array4D<cfloat> recovered(1, 4, 8, 8);
  split_subgrids_from_grid(params, items, grid.cview(), recovered.view());
  for (std::size_t i = 0; i < subgrids.size(); ++i)
    EXPECT_EQ(subgrids.data()[i], recovered.data()[i]);
}

TEST(AdderTest, OverlappingPatchesAccumulate) {
  Parameters params;
  params.grid_size = 64;
  params.subgrid_size = 8;
  params.image_size = 0.01;
  params.nr_stations = 2;
  params.kernel_size = 2;

  WorkItem a, b;
  a.coord_x = a.coord_y = 10;
  b.coord_x = b.coord_y = 14;  // overlaps a by 4 pixels in each dimension
  std::vector<WorkItem> items = {a, b};

  Array4D<cfloat> subgrids(2, 4, 8, 8);
  subgrids.fill(cfloat{1.0f, 0.0f});
  Array3D<cfloat> grid(4, 64, 64);
  add_subgrids_to_grid(params, items, subgrids.cview(), grid.view());

  EXPECT_EQ(grid(0, 10, 10), (cfloat{1.0f, 0.0f}));
  EXPECT_EQ(grid(0, 15, 15), (cfloat{2.0f, 0.0f}));  // overlap region
  EXPECT_EQ(grid(0, 21, 21), (cfloat{1.0f, 0.0f}));
  EXPECT_EQ(grid(0, 30, 30), (cfloat{0.0f, 0.0f}));
}

TEST(AdderTest, PatchOutsideGridThrows) {
  Parameters params;
  params.grid_size = 64;
  params.subgrid_size = 8;
  params.image_size = 0.01;
  params.nr_stations = 2;
  params.kernel_size = 2;

  WorkItem item;
  item.coord_x = 60;  // 60 + 8 > 64
  item.coord_y = 0;
  std::vector<WorkItem> items = {item};
  Array4D<cfloat> subgrids(1, 4, 8, 8);
  Array3D<cfloat> grid(4, 64, 64);
  EXPECT_THROW(
      add_subgrids_to_grid(params, items, subgrids.cview(), grid.view()),
      Error);
}

// Shared scenario for the tiled-adder tests: a grid the tile size does not
// divide (ragged edge tiles), items straddling tile boundaries, stacked
// overlaps and the extreme bottom-right corner patch.
struct TiledScenario {
  Parameters params;
  std::vector<WorkItem> items;
  Array4D<cfloat> subgrids;

  static TiledScenario make() {
    TiledScenario sc;
    sc.params.grid_size = 60;  // 60 / 16 = 3.75 -> ragged last tile row/col
    sc.params.subgrid_size = 8;
    sc.params.image_size = 0.01;
    sc.params.nr_stations = 2;
    sc.params.kernel_size = 2;
    sc.params.adder_tile_size = 16;

    std::mt19937 rng(11);
    std::uniform_int_distribution<int> pos(0, 60 - 8);
    for (int i = 0; i < 40; ++i) {
      WorkItem item;
      item.coord_x = pos(rng);
      item.coord_y = pos(rng);
      sc.items.push_back(item);
    }
    WorkItem corner;  // last grid row/column: lives in the ragged edge tiles
    corner.coord_x = corner.coord_y = 60 - 8;
    sc.items.push_back(corner);
    WorkItem straddle;  // patch [12, 20) spans the tile boundary at 16
    straddle.coord_x = straddle.coord_y = 12;
    sc.items.push_back(straddle);
    for (std::size_t i = 0; i < sc.items.size(); ++i)
      sc.items[i].order = static_cast<std::uint32_t>(i);

    sc.subgrids = Array4D<cfloat>(sc.items.size(), 4, 8, 8);
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    for (auto& v : sc.subgrids) v = {dist(rng), dist(rng)};
    return sc;
  }
};

TEST(AdderTest, TiledMatchesRowbandBitForBit) {
  auto sc = TiledScenario::make();
  const std::size_t g = sc.params.grid_size;
  Array3D<cfloat> tiled(4, g, g), rowband(4, g, g);
  add_subgrids_to_grid(sc.params, sc.items, sc.subgrids.cview(),
                       tiled.view());
  add_subgrids_to_grid_rowband(sc.params, sc.items, sc.subgrids.cview(),
                               rowband.view());
  for (std::size_t i = 0; i < tiled.size(); ++i)
    ASSERT_EQ(tiled.data()[i], rowband.data()[i]) << "grid element " << i;
}

TEST(AdderTest, AccumulationIsCanonicalUnderSpanPermutation) {
  // Shuffling the span (items together with their subgrid slots) must not
  // change a single bit of the grid: the tile lists follow WorkItem::order,
  // not span position. This is the invariant that makes tile-sorted and
  // arrival-ordered plans produce identical grids.
  auto sc = TiledScenario::make();
  const std::size_t g = sc.params.grid_size;
  Array3D<cfloat> reference(4, g, g);
  add_subgrids_to_grid(sc.params, sc.items, sc.subgrids.cview(),
                       reference.view());

  std::vector<std::size_t> perm(sc.items.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::mt19937 rng(23);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<WorkItem> shuffled_items;
  Array4D<cfloat> shuffled_subgrids(sc.items.size(), 4, 8, 8);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    shuffled_items.push_back(sc.items[perm[i]]);
    for (std::size_t p = 0; p < 4; ++p)
      for (std::size_t y = 0; y < 8; ++y)
        for (std::size_t x = 0; x < 8; ++x)
          shuffled_subgrids(i, p, y, x) = sc.subgrids(perm[i], p, y, x);
  }

  Array3D<cfloat> shuffled(4, g, g);
  add_subgrids_to_grid(sc.params, shuffled_items, shuffled_subgrids.cview(),
                       shuffled.view());
  for (std::size_t i = 0; i < reference.size(); ++i)
    ASSERT_EQ(reference.data()[i], shuffled.data()[i]) << "grid element "
                                                       << i;
}

TEST(AdderTest, TiledSplitterMatchesDirectPatchCopy) {
  auto sc = TiledScenario::make();
  const std::size_t g = sc.params.grid_size;
  Array3D<cfloat> grid(4, g, g);
  std::mt19937 rng(31);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : grid) v = {dist(rng), dist(rng)};

  const TileBinning binning = bin_items_by_tile(sc.params, sc.items);
  Array4D<cfloat> out(sc.items.size(), 4, 8, 8);
  split_subgrids_from_grid(sc.params, sc.items, binning, grid.cview(),
                           out.view());
  for (std::size_t i = 0; i < sc.items.size(); ++i) {
    const auto y0 = static_cast<std::size_t>(sc.items[i].coord_y);
    const auto x0 = static_cast<std::size_t>(sc.items[i].coord_x);
    for (std::size_t p = 0; p < 4; ++p)
      for (std::size_t y = 0; y < 8; ++y)
        for (std::size_t x = 0; x < 8; ++x)
          ASSERT_EQ(out(i, p, y, x), grid(p, y0 + y, x0 + x));
  }
}

TEST(AdderTest, TileBinningCoversEachTileItemPairOnce) {
  auto sc = TiledScenario::make();
  const TileBinning binning = bin_items_by_tile(sc.params, sc.items);
  const std::size_t t = binning.tile_size;
  ASSERT_EQ(t, sc.params.adder_tile_size);
  ASSERT_EQ(binning.tiles_per_row,
            (sc.params.grid_size + t - 1) / t);
  ASSERT_EQ(binning.tile_offsets.size(), binning.nr_tiles() + 1);

  // Every (tile, item) intersection appears exactly once, in ascending
  // WorkItem::order within the tile.
  for (std::size_t tile = 0; tile < binning.nr_tiles(); ++tile) {
    const std::size_t ty = tile / binning.tiles_per_row;
    const std::size_t tx = tile % binning.tiles_per_row;
    std::vector<bool> listed(sc.items.size(), false);
    std::uint32_t last_order = 0;
    bool first = true;
    for (std::uint32_t k = binning.tile_offsets[tile];
         k < binning.tile_offsets[tile + 1]; ++k) {
      const std::uint32_t i = binning.item_indices[k];
      ASSERT_LT(i, sc.items.size());
      EXPECT_FALSE(listed[i]) << "item " << i << " listed twice in tile "
                              << tile;
      listed[i] = true;
      if (!first) EXPECT_LE(last_order, sc.items[i].order);
      last_order = sc.items[i].order;
      first = false;
    }
    for (std::size_t i = 0; i < sc.items.size(); ++i) {
      const auto x0 = static_cast<std::size_t>(sc.items[i].coord_x);
      const auto y0 = static_cast<std::size_t>(sc.items[i].coord_y);
      const std::size_t n = sc.params.subgrid_size;
      const bool overlaps = x0 / t <= tx && tx <= (x0 + n - 1) / t &&
                            y0 / t <= ty && ty <= (y0 + n - 1) / t;
      EXPECT_EQ(listed[i], overlaps)
          << "tile " << tile << " item " << i;
    }
  }
}

TEST(ProcessorTest, SortedAndUnsortedPlansAreBitIdentical) {
  auto s = Setup::make(6, 64, 8, 256, 24, 8);
  Array3D<Visibility> vis(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                          s.ds.nr_channels());
  std::mt19937 rng(17);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : vis)
    for (int p = 0; p < 4; ++p) v[p] = {dist(rng), dist(rng)};

  Parameters sorted_params = s.params;
  sorted_params.plan_ordering = PlanOrdering::kTileSorted;
  Parameters arrival_params = s.params;
  arrival_params.plan_ordering = PlanOrdering::kArrival;

  Plan sorted_plan(sorted_params, s.ds.uvw, s.ds.frequencies,
                   s.ds.baselines);
  Plan arrival_plan(arrival_params, s.ds.uvw, s.ds.frequencies,
                    s.ds.baselines);
  ASSERT_EQ(sorted_plan.nr_subgrids(), arrival_plan.nr_subgrids());

  // Gridding: both orderings must produce the same grid, bit for bit.
  Processor sorted_proc(sorted_params), arrival_proc(arrival_params);
  Array3D<cfloat> sorted_grid(4, s.params.grid_size, s.params.grid_size);
  Array3D<cfloat> arrival_grid(4, s.params.grid_size, s.params.grid_size);
  sorted_proc.grid_visibilities(sorted_plan, s.ds.uvw.cview(), vis.cview(),
                                s.aterms.cview(), sorted_grid.view());
  arrival_proc.grid_visibilities(arrival_plan, s.ds.uvw.cview(), vis.cview(),
                                 s.aterms.cview(), arrival_grid.view());
  for (std::size_t i = 0; i < sorted_grid.size(); ++i)
    ASSERT_EQ(sorted_grid.data()[i], arrival_grid.data()[i])
        << "grid element " << i;

  // Degridding from the common grid must also agree bit for bit.
  Array3D<Visibility> sorted_vis(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                 s.ds.nr_channels());
  Array3D<Visibility> arrival_vis(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                  s.ds.nr_channels());
  sorted_proc.degrid_visibilities(sorted_plan, s.ds.uvw.cview(),
                                  sorted_grid.cview(), s.aterms.cview(),
                                  sorted_vis.view());
  arrival_proc.degrid_visibilities(arrival_plan, s.ds.uvw.cview(),
                                   sorted_grid.cview(), s.aterms.cview(),
                                   arrival_vis.view());
  for (std::size_t i = 0; i < sorted_vis.size(); ++i)
    for (int p = 0; p < 4; ++p)
      ASSERT_EQ(sorted_vis.data()[i][p], arrival_vis.data()[i][p])
          << "visibility " << i << " pol " << p;
}

// --- accounting -------------------------------------------------------------------

TEST(AccountingTest, GridderRhoIsSeventeenInTheLimit) {
  auto s = Setup::make(8, 64, 8, 256, 24, 8);
  const OpCounts c = gridder_op_counts(s.plan);
  // rho -> 17 plus the amortized geometry terms; must sit close to 17.
  EXPECT_GT(c.rho(), 17.0);
  EXPECT_LT(c.rho(), 18.5);
  EXPECT_EQ(c.visibilities, s.plan.nr_planned_visibilities());
}

TEST(AccountingTest, KernelsAreComputeBound) {
  auto s = Setup::make(8, 64, 8, 256, 24, 8);
  // Operational intensity in device memory far exceeds any machine ridge
  // point (paper: "On all architectures, both kernels are compute bound").
  EXPECT_GT(gridder_op_counts(s.plan).intensity_dev(), 20.0);
  EXPECT_GT(degridder_op_counts(s.plan).intensity_dev(), 20.0);
}

TEST(AccountingTest, SharedIntensityNearOneOpPerByte) {
  auto s = Setup::make(8, 64, 8, 256, 24, 8);
  const double gi = gridder_op_counts(s.plan).intensity_shared();
  const double di = degridder_op_counts(s.plan).intensity_shared();
  // Fig 13: both kernels sit near ~1 op/byte of shared traffic, with the
  // degridder lower than the gridder.
  EXPECT_GT(gi, 0.5);
  EXPECT_LT(gi, 2.0);
  EXPECT_LT(di, gi);
}

TEST(AccountingTest, FftCountsScaleWithSubgrids) {
  auto s1 = Setup::make(4, 16, 4, 256, 24, 8);
  auto s2 = Setup::make(8, 64, 8, 256, 24, 8);
  EXPECT_GT(s2.plan.nr_subgrids(), s1.plan.nr_subgrids());
  EXPECT_GT(subgrid_fft_op_counts(s2.plan).ops(),
            subgrid_fft_op_counts(s1.plan).ops());
}

TEST(AccountingTest, AdderMovesThreeTimesTheSplitterTraffic) {
  auto s = Setup::make(6, 32, 4, 256, 24, 8);
  const auto a = adder_op_counts(s.plan);
  const auto sp = splitter_op_counts(s.plan);
  EXPECT_EQ(a.dev_bytes, sp.dev_bytes / 2 * 3);
  EXPECT_GT(a.add, 0u);
  EXPECT_EQ(sp.ops(), 0u);
}

}  // namespace
