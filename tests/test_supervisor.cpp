// Resilient-supervisor suite (ctest label `faults`, DESIGN.md §12).
//
// Pins the recovery layer end to end:
//   1. the cooperative-cancellation primitives (CancelToken, the WorkerPool
//      cancel path, RunControl skip masks) in isolation,
//   2. the ResilientBackend policy: transient faults retried bit-identically
//      (work groups are pure, so a retry of a non-faulting group reproduces
//      its first attempt exactly), persistent per-group faults quarantined
//      with partial-result semantics, repeated backend failures failing over
//      pipelined → synchronous, and deadlines aborting — never retrying —
//      at every catalogued fault site,
//   3. the IDGCKPT1 checkpoint format: round-trip fidelity, named rejection
//      of truncated / corrupt / mislabelled / oversized files, and
//      resume-vs-uninterrupted bit-identity of the major-cycle loop.
// Injection cases GTEST_SKIP unless built with -DIDG_FAULT_INJECTION=ON.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clean/major_cycle.hpp"
#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "common/threadpool.hpp"
#include "idg/backend.hpp"
#include "idg/parameters.hpp"
#include "idg/plan.hpp"
#include "idg/supervisor.hpp"
#include "obs/export.hpp"
#include "obs/sink.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;
using namespace std::chrono_literals;

// --- fixture (mirrors test_faults.cpp) ---------------------------------------

struct Setup {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;

  static Setup make(BadSamplePolicy policy = BadSamplePolicy::kZeroAndContinue) {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 6;
    cfg.nr_timesteps = 32;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    cfg.subgrid_size = 16;
    auto ds = sim::make_benchmark_dataset(cfg);

    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = cfg.nr_stations;
    params.kernel_size = 4;
    params.work_group_size = 4;  // several work groups in flight
    params.bad_sample_policy = policy;
    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    auto aterms =
        sim::make_identity_aterms(1, cfg.nr_stations, cfg.subgrid_size);
    return {std::move(ds), params, std::move(plan), std::move(aterms)};
  }

  Array3D<cfloat> grid_with(const GridderBackend& backend,
                            obs::MetricsSink& sink = obs::null_sink(),
                            const RunControl& ctl = RunControl{}) const {
    Array3D<cfloat> grid(kNrPolarizations, params.grid_size, params.grid_size);
    backend.grid(plan, ds.uvw.cview(), ds.visibilities.cview(), ds.flag_view(),
                 aterms.cview(), grid.view(), sink, ctl);
    return grid;
  }

  Array3D<cfloat> run_grid(const std::string& backend_name,
                           obs::MetricsSink& sink = obs::null_sink()) const {
    auto backend = make_backend(backend_name, params);
    return grid_with(*backend, sink);
  }
};

bool grids_bit_identical(const Array3D<cfloat>& a, const Array3D<cfloat>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cfloat)) == 0;
}

/// RAII: no injection arms leak from one test into the next.
struct DisarmGuard {
  DisarmGuard() { fault::Injector::instance().disarm_all(); }
  ~DisarmGuard() { fault::Injector::instance().disarm_all(); }
};

#define SKIP_WITHOUT_INJECTION()                                        \
  if (!fault::compiled_in()) {                                          \
    GTEST_SKIP() << "build without -DIDG_FAULT_INJECTION=ON";           \
  }                                                                     \
  DisarmGuard disarm_guard

// --- 1. cancellation primitives ----------------------------------------------

TEST(CancelTokenTest, RequestLatchesAndCheckNamesTheSite) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("unit.site"));
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  try {
    token.check("unit.site", 7);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit.site"), std::string::npos) << what;
    EXPECT_NE(what.find("work group 7"), std::string::npos) << what;
    EXPECT_NE(what.find("cancellation requested"), std::string::npos) << what;
  }
  EXPECT_TRUE(token.cancelled());  // latched, not consumed
}

TEST(CancelTokenTest, DeadlineTokenTripsAfterItsBudgetAndSaysSo) {
  CancelToken token(1);  // 1 ms budget
  std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(token.cancelled());
  try {
    token.check("unit.deadline");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline of 1 ms exceeded"),
              std::string::npos)
        << e.what();
  }
}

TEST(WorkerPoolCancelTest, CancelledTokenAbortsParallelForWithCancelledError) {
  WorkerPool pool(2);
  CancelToken token;
  token.request_cancel();
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(1000, [&](std::size_t) { ++ran; }, &token),
      CancelledError);
  // The check runs before each index is claimed: nothing (or at most the
  // first few racing claims) executes against a pre-cancelled token.
  EXPECT_LT(ran.load(), 1000);
  // The pool survives for the next job.
  pool.parallel_for(8, [&](std::size_t) { ++ran; });
}

TEST(RunControlTest, SkipMaskDropsGroupsIdenticallyOnBothBackends) {
  auto s = Setup::make();
  ASSERT_GT(s.plan.nr_work_groups(), 2u);
  auto sync = make_backend("synchronous", s.params);
  auto piped = make_backend("pipelined", s.params);
  const auto reference = s.grid_with(*sync);

  // Skip everything: the grid stays untouched (all zeros).
  std::vector<std::uint8_t> skip_all(s.plan.nr_work_groups(), 1);
  RunControl all_ctl;
  all_ctl.skip_groups = skip_all;
  const auto skipped_all = s.grid_with(*sync, obs::null_sink(), all_ctl);
  for (std::size_t i = 0; i < skipped_all.size(); ++i) {
    ASSERT_EQ(skipped_all.data()[i], cfloat(0.0f, 0.0f));
  }

  // Skip one group: differs from the full grid, and both backends agree
  // bit for bit on the partial result.
  std::vector<std::uint8_t> skip_one(s.plan.nr_work_groups(), 0);
  skip_one[1] = 1;
  RunControl one_ctl;
  one_ctl.skip_groups = skip_one;
  const auto partial_sync = s.grid_with(*sync, obs::null_sink(), one_ctl);
  const auto partial_piped = s.grid_with(*piped, obs::null_sink(), one_ctl);
  EXPECT_FALSE(grids_bit_identical(partial_sync, reference));
  EXPECT_TRUE(grids_bit_identical(partial_sync, partial_piped));
}

TEST(BackendFactoryTest, ResilientNamesNestingAndUnknownInner) {
  auto s = Setup::make();
  EXPECT_EQ(make_backend("resilient", s.params)->name(), "resilient");
  EXPECT_EQ(make_backend("resilient:synchronous", s.params)->name(),
            "resilient");
  EXPECT_THROW(make_backend("resilient:resilient", s.params), Error);
  EXPECT_THROW(make_backend("resilient:bogus", s.params), Error);
}

TEST(FaultSpecTest, TransientThrowCountStopsFiringWhenExhausted) {
  SKIP_WITHOUT_INJECTION();
  auto& inj = fault::Injector::instance();
  inj.arm_from_spec("unit.transient=throw:2");
  int thrown = 0;
  for (int i = 0; i < 5; ++i) {
    try {
      inj.hit("unit.transient", i);
    } catch (const Error&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 2);  // fires exactly twice, then the site passes
  EXPECT_EQ(inj.fired("unit.transient"), 2u);
  EXPECT_THROW(inj.arm_from_spec("site=throw:notanumber"), Error);
}

// --- 2. supervisor policy ----------------------------------------------------

TEST(SupervisorTest, TransientFaultIsRetriedAndResultIsBitIdentical) {
  SKIP_WITHOUT_INJECTION();
  auto s = Setup::make();
  const auto reference = s.run_grid("synchronous");

  // First hit of work group 1 fails, the retry passes (pure re-execution).
  fault::Injector::instance().arm_from_spec(
      "processor.grid.kernel@1=throw:1");
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0;  // keep the suite fast
  auto resilient = make_resilient_backend(
      make_backend("synchronous", s.params), nullptr, cfg);
  obs::AggregateSink sink;
  const auto supervised = s.grid_with(*resilient, sink);

  EXPECT_TRUE(grids_bit_identical(supervised, reference));
  const auto* rb = dynamic_cast<const ResilientBackend*>(resilient.get());
  ASSERT_NE(rb, nullptr);
  const RecoveryReport report = rb->report();
  EXPECT_GE(report.retried_work_groups, 1u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.backend_failovers, 0u);

  // The recovery counters flow into the v5 metrics schema.
  const auto snapshot = sink.snapshot();
  ASSERT_TRUE(snapshot.count(stage::kSupervisor));
  EXPECT_GE(snapshot.at(stage::kSupervisor).retried_work_groups, 1u);
  EXPECT_EQ(snapshot.at(stage::kSupervisor).quarantined_work_groups, 0u);
  const std::string json = obs::to_json(snapshot);
  EXPECT_NE(json.find("\"retried_work_groups\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"idg-obs/v8\""), std::string::npos);
}

TEST(SupervisorTest, PersistentFaultQuarantinesTheGroupAndRunCompletes) {
  SKIP_WITHOUT_INJECTION();
  auto s = Setup::make();

  // Group 1 fails on every attempt: after max_attempts_per_group failures
  // it is quarantined and the run completes without it.
  fault::Injector::instance().arm_from_spec("processor.grid.kernel@1=throw");
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0;
  auto resilient = make_resilient_backend(
      make_backend("synchronous", s.params), nullptr, cfg);
  obs::AggregateSink sink;
  const auto supervised = s.grid_with(*resilient, sink);

  const auto* rb = dynamic_cast<const ResilientBackend*>(resilient.get());
  ASSERT_NE(rb, nullptr);
  const RecoveryReport report = rb->report();
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].group, 1);
  EXPECT_EQ(report.quarantined[0].attempts, cfg.max_attempts_per_group);
  EXPECT_NE(report.quarantined[0].last_error.find("injected fault"),
            std::string::npos)
      << report.quarantined[0].last_error;

  // Partial-result semantics: the supervised grid equals an unsupervised
  // run with the same group masked out, and the dropped samples are
  // reported as skipped under the supervisor stage.
  std::vector<std::uint8_t> skip(s.plan.nr_work_groups(), 0);
  skip[1] = 1;
  RunControl ctl;
  ctl.skip_groups = skip;
  fault::Injector::instance().disarm_all();
  auto sync = make_backend("synchronous", s.params);
  EXPECT_TRUE(grids_bit_identical(supervised,
                                  s.grid_with(*sync, obs::null_sink(), ctl)));
  const auto snapshot = sink.snapshot();
  ASSERT_TRUE(snapshot.count(stage::kSupervisor));
  EXPECT_EQ(snapshot.at(stage::kSupervisor).quarantined_work_groups, 1u);
  EXPECT_GT(snapshot.at(stage::kSupervisor).skipped_samples, 0u);
}

TEST(SupervisorTest, RepeatedFailuresFailOverToTheSynchronousFallback) {
  SKIP_WITHOUT_INJECTION();
  auto s = Setup::make();
  const auto reference = s.run_grid("synchronous");

  // Every pipelined kernel invocation fails; the synchronous fallback has
  // different site names, so after `failover_after` failures the run
  // switches backends and completes with the full (non-partial) result.
  fault::Injector::instance().arm_from_spec("pipelined.grid.kernel=throw");
  auto resilient = make_backend("resilient", s.params);
  obs::AggregateSink sink;
  const auto supervised = s.grid_with(*resilient, sink);

  const auto* rb = dynamic_cast<const ResilientBackend*>(resilient.get());
  ASSERT_NE(rb, nullptr);
  EXPECT_TRUE(rb->failed_over());
  const RecoveryReport report = rb->report();
  EXPECT_EQ(report.backend_failovers, 1u);
  EXPECT_TRUE(report.quarantined.empty());  // failover beat quarantine
  EXPECT_TRUE(grids_bit_identical(supervised, reference));
  const auto snapshot = sink.snapshot();
  EXPECT_EQ(snapshot.at(stage::kSupervisor).backend_failovers, 1u);
}

TEST(SupervisorTest, DeterministicContractErrorsAreNotRetried) {
  SKIP_WITHOUT_INJECTION();
  // kReject scrub failures are deterministic functions of the input — the
  // supervisor must propagate them untouched instead of burning attempts.
  auto s = Setup::make(BadSamplePolicy::kReject);
  sim::apply_rfi_flags(s.ds, 0.0);
  s.ds.flags(2, 5, 1) = 1;
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0;
  auto resilient = make_resilient_backend(
      make_backend("synchronous", s.params), nullptr, cfg);
  EXPECT_THROW(s.grid_with(*resilient), Error);
  const auto* rb = dynamic_cast<const ResilientBackend*>(resilient.get());
  ASSERT_NE(rb, nullptr);
  EXPECT_TRUE(rb->report().clean());
}

struct SiteCase {
  const char* backend;
  const char* site;
};

class DeadlineSiteTest : public ::testing::TestWithParam<SiteCase> {};

TEST_P(DeadlineSiteTest, DeadlineAbortsInjectedStallWithCancelledError) {
  SKIP_WITHOUT_INJECTION();
  const auto [backend_name, site] = GetParam();
  // A 2 s stall at the site against a 150 ms deadline: the injected sleep
  // polls the cancel registry, so the run aborts in bounded time with a
  // CancelledError naming the deadline — at every catalogued site.
  fault::Injector::instance().arm_from_spec(std::string(site) + "=delay:2000");

  auto s = Setup::make();
  s.params.deadline_ms = 150;
  auto backend = make_backend(backend_name, s.params);
  const auto start = std::chrono::steady_clock::now();
  const bool is_degrid = std::string(site).find("degrid") != std::string::npos;
  try {
    if (is_degrid) {
      Array3D<cfloat> grid(kNrPolarizations, s.params.grid_size,
                           s.params.grid_size);
      Array3D<Visibility> predicted(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                    s.ds.nr_channels());
      backend->degrid(s.plan, s.ds.uvw.cview(), grid.cview(),
                      s.aterms.cview(), predicted.view());
    } else {
      s.grid_with(*backend);
    }
    FAIL() << "expected CancelledError from site " << site;
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, DeadlineSiteTest,
    ::testing::Values(
        SiteCase{"synchronous", "processor.grid.kernel"},
        SiteCase{"synchronous", "processor.grid.fft"},
        SiteCase{"synchronous", "processor.grid.adder"},
        SiteCase{"synchronous", "processor.degrid.splitter"},
        SiteCase{"synchronous", "processor.degrid.fft"},
        SiteCase{"synchronous", "processor.degrid.kernel"},
        SiteCase{"pipelined", "pipelined.grid.kernel"},
        SiteCase{"pipelined", "pipelined.grid.fft"},
        SiteCase{"pipelined", "pipelined.grid.adder"},
        SiteCase{"pipelined", "pipelined.grid.push"},
        SiteCase{"pipelined", "pipelined.degrid.splitter"},
        SiteCase{"pipelined", "pipelined.degrid.fft"},
        SiteCase{"pipelined", "pipelined.degrid.kernel"}),
    [](const ::testing::TestParamInfo<SiteCase>& info) {
      std::string name = info.param.site;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(SupervisorTest, CancellationIsFinalNeverRetried) {
  SKIP_WITHOUT_INJECTION();
  auto s = Setup::make();
  fault::Injector::instance().arm_from_spec(
      "processor.grid.kernel=delay:2000");
  SupervisorConfig cfg;
  cfg.deadline_ms = 150;
  auto resilient = make_resilient_backend(
      make_backend("synchronous", s.params), nullptr, cfg);
  EXPECT_THROW(s.grid_with(*resilient), CancelledError);
  const auto* rb = dynamic_cast<const ResilientBackend*>(resilient.get());
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(rb->report().retried_work_groups, 0u);  // cancellation != retry
}

TEST(SupervisorTest, ExhaustedAttemptBudgetGivesUpDescriptively) {
  SKIP_WITHOUT_INJECTION();
  auto s = Setup::make();
  // Unattributable persistent failure, no fallback: the supervisor must
  // give up after its bounded attempt budget, naming the last failure.
  fault::Injector::instance().arm_from_spec("processor.grid.kernel=throw");
  SupervisorConfig cfg;
  cfg.max_run_attempts = 2;
  cfg.max_attempts_per_group = 100;  // quarantine never saves this run
  cfg.backoff_base_ms = 0;
  auto resilient = make_resilient_backend(
      make_backend("synchronous", s.params), nullptr, cfg);
  try {
    s.grid_with(*resilient);
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gave up after 2 attempts"), std::string::npos)
        << what;
    EXPECT_NE(what.find("injected fault"), std::string::npos) << what;
  }
}

// --- 3. checkpoint / resume --------------------------------------------------

clean::MajorCycleCheckpoint tiny_checkpoint() {
  clean::MajorCycleCheckpoint ckpt;
  ckpt.cycles_done = 2;
  ckpt.total_components = 17;
  ckpt.peak_history = {3.5f, 1.25f};
  ckpt.model_image = Array3D<cfloat>(kNrPolarizations, 2, 2);
  ckpt.residual_image = Array3D<cfloat>(kNrPolarizations, 2, 2);
  ckpt.residual_vis = Array3D<Visibility>(3, 2, 1);
  for (std::size_t i = 0; i < ckpt.model_image.size(); ++i) {
    ckpt.model_image.data()[i] = cfloat(float(i), -float(i));
    ckpt.residual_image.data()[i] = cfloat(-float(i), float(i) * 0.5f);
  }
  for (std::size_t i = 0; i < ckpt.residual_vis.size(); ++i) {
    Visibility v;
    v.xx = cfloat(float(i), 1.0f);
    v.yy = cfloat(2.0f, float(i));
    ckpt.residual_vis.data()[i] = v;
  }
  return ckpt;
}

TEST(CheckpointTest, RoundTripRestoresEveryFieldBitExactly) {
  const std::string path = testing::TempDir() + "idg_roundtrip.ckpt";
  const auto saved = tiny_checkpoint();
  clean::save_checkpoint(path, saved);
  const auto loaded = clean::load_checkpoint(path);
  EXPECT_EQ(loaded.cycles_done, saved.cycles_done);
  EXPECT_EQ(loaded.total_components, saved.total_components);
  ASSERT_EQ(loaded.peak_history.size(), saved.peak_history.size());
  EXPECT_EQ(std::memcmp(loaded.peak_history.data(), saved.peak_history.data(),
                        saved.peak_history.size() * sizeof(float)),
            0);
  ASSERT_EQ(loaded.model_image.size(), saved.model_image.size());
  EXPECT_EQ(std::memcmp(loaded.model_image.data(), saved.model_image.data(),
                        saved.model_image.size() * sizeof(cfloat)),
            0);
  EXPECT_EQ(std::memcmp(loaded.residual_image.data(),
                        saved.residual_image.data(),
                        saved.residual_image.size() * sizeof(cfloat)),
            0);
  ASSERT_EQ(loaded.residual_vis.size(), saved.residual_vis.size());
  EXPECT_EQ(std::memcmp(loaded.residual_vis.data(), saved.residual_vis.data(),
                        saved.residual_vis.size() * sizeof(Visibility)),
            0);
  std::remove(path.c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_load_fails_with(const std::string& path, const char* needle) {
  try {
    clean::load_checkpoint(path);
    FAIL() << "expected idg::Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointTest, RejectsMissingTruncatedCorruptAndMislabelledFiles) {
  const std::string path = testing::TempDir() + "idg_damage.ckpt";
  clean::save_checkpoint(path, tiny_checkpoint());
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), 16u);

  expect_load_fails_with(testing::TempDir() + "no_such.ckpt",
                         "cannot open checkpoint file");

  // Shorter than magic + CRC: named truncation.
  write_file(path, good.substr(0, 6));
  expect_load_fails_with(path, "truncated");

  // A partial write (prefix of the real file): the trailing CRC no longer
  // matches the payload it now appears to cover.
  write_file(path, good.substr(0, good.size() / 2));
  expect_load_fails_with(path, "corrupt or partially written");

  // Single flipped payload byte: CRC rejects it.
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x40;
  write_file(path, flipped);
  expect_load_fails_with(path, "corrupt or partially written");

  // Wrong magic on otherwise-valid bytes.
  std::string mislabelled = good;
  mislabelled[3] = 'X';
  write_file(path, mislabelled);
  expect_load_fails_with(path, "not a 'IDGCKPT1' checkpoint file");

  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsPayloadWithTrailingBytes) {
  // A well-formed file whose payload holds more than its header accounts
  // for: rebuilt through CheckpointWriter so the CRC is valid and only the
  // finish() trailing-bytes check can catch it.
  const std::string path = testing::TempDir() + "idg_trailing.ckpt";
  const auto ckpt = tiny_checkpoint();
  CheckpointWriter writer;
  writer.write_pod(ckpt.cycles_done);
  writer.write_pod(ckpt.total_components);
  writer.write_pod(static_cast<std::uint64_t>(ckpt.peak_history.size()));
  for (std::size_t d = 0; d < 3; ++d)
    writer.write_pod(static_cast<std::uint64_t>(ckpt.model_image.dim(d)));
  for (std::size_t d = 0; d < 3; ++d)
    writer.write_pod(static_cast<std::uint64_t>(ckpt.residual_vis.dim(d)));
  writer.write_array(ckpt.peak_history.data(), ckpt.peak_history.size());
  writer.write_array(ckpt.model_image.data(), ckpt.model_image.size());
  writer.write_array(ckpt.residual_image.data(), ckpt.residual_image.size());
  writer.write_array(ckpt.residual_vis.data(), ckpt.residual_vis.size());
  writer.write_pod(std::uint32_t{0xdeadbeef});  // the stowaway
  writer.commit(path, clean::kCheckpointMagic);
  expect_load_fails_with(path, "trailing bytes");
  std::remove(path.c_str());
}

TEST(CheckpointTest, AtomicCommitLeavesNoTempFileBehind) {
  const std::string path = testing::TempDir() + "idg_atomic.ckpt";
  clean::save_checkpoint(path, tiny_checkpoint());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());  // renamed over the target, not left behind
  EXPECT_NO_THROW(clean::load_checkpoint(path));
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveSweepsStaleTempFilesOfKilledWriters) {
  const std::string path = testing::TempDir() + "idg_sweep.ckpt";
  // Orphans a killed writer would leave behind: the legacy un-suffixed
  // name and a pid-suffixed temp of a process that no longer exists.
  const std::string legacy = path + ".tmp";
  const std::string orphan = path + ".tmp.99999999";
  std::ofstream(legacy, std::ios::binary) << "half-written";
  std::ofstream(orphan, std::ios::binary) << "half-written";
  clean::save_checkpoint(path, tiny_checkpoint());
  EXPECT_FALSE(std::ifstream(legacy, std::ios::binary).good());
  EXPECT_FALSE(std::ifstream(orphan, std::ios::binary).good());
  EXPECT_NO_THROW(clean::load_checkpoint(path));  // the real file survives
  std::remove(path.c_str());
}

// --- resume vs uninterrupted -------------------------------------------------

struct CleanSetup {
  Setup s;
  clean::MajorCycleConfig config;

  static CleanSetup make() {
    CleanSetup c{Setup::make(), {}};
    c.config.nr_major_cycles = 3;
    c.config.minor.max_iterations = 40;
    return c;
  }

  clean::MajorCycleResult run(const GridderBackend& backend) const {
    return clean::run_major_cycles(backend, s.plan, s.ds.uvw.cview(),
                                   s.ds.visibilities.cview(),
                                   s.aterms.cview(), config);
  }
};

TEST(CheckpointTest, ResumedRunIsBitIdenticalToUninterruptedRun) {
  auto c = CleanSetup::make();
  auto backend = make_backend("synchronous", c.s.params);
  const auto uninterrupted = c.run(*backend);

  // "Kill" the job after one cycle: run a single checkpointing cycle, then
  // resume the remaining two from the snapshot.
  const std::string path = testing::TempDir() + "idg_resume.ckpt";
  auto first = c;
  first.config.nr_major_cycles = 1;
  first.config.checkpoint_path = path;
  first.run(*backend);

  auto resumed_cfg = c;
  resumed_cfg.config.resume_path = path;
  const auto resumed = resumed_cfg.run(*backend);

  EXPECT_EQ(resumed.total_components, uninterrupted.total_components);
  ASSERT_EQ(resumed.peak_history.size(), uninterrupted.peak_history.size());
  for (std::size_t i = 0; i < resumed.peak_history.size(); ++i) {
    EXPECT_EQ(resumed.peak_history[i], uninterrupted.peak_history[i]) << i;
  }
  EXPECT_TRUE(
      grids_bit_identical(resumed.model_image, uninterrupted.model_image));
  EXPECT_TRUE(grids_bit_identical(resumed.residual_image,
                                  uninterrupted.residual_image));
  std::remove(path.c_str());
}

TEST(CheckpointTest, ResumeRejectsMismatchedDimensionsAndOverrunCycles) {
  auto c = CleanSetup::make();
  auto backend = make_backend("synchronous", c.s.params);
  const std::string path = testing::TempDir() + "idg_mismatch.ckpt";

  // Visibility cube from a different dataset.
  clean::MajorCycleCheckpoint wrong;
  wrong.cycles_done = 1;
  wrong.model_image = Array3D<cfloat>(kNrPolarizations, c.s.params.grid_size,
                                      c.s.params.grid_size);
  wrong.residual_image = Array3D<cfloat>(
      kNrPolarizations, c.s.params.grid_size, c.s.params.grid_size);
  wrong.residual_vis = Array3D<Visibility>(1, 1, 1);
  clean::save_checkpoint(path, wrong);
  auto mismatch = c;
  mismatch.config.resume_path = path;
  try {
    mismatch.run(*backend);
    FAIL() << "expected dimension-mismatch error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("does not match this run"),
              std::string::npos)
        << e.what();
  }

  // More cycles done than this run asks for.
  wrong.residual_vis = Array3D<Visibility>(c.s.ds.nr_baselines(),
                                           c.s.ds.nr_timesteps(),
                                           c.s.ds.nr_channels());
  wrong.cycles_done = 5;
  clean::save_checkpoint(path, wrong);
  auto overrun = c;
  overrun.config.resume_path = path;
  try {
    overrun.run(*backend);
    FAIL() << "expected overrun-cycles error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("beyond this run's"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(SupervisorTest, MajorCyclesRunUnderTheResilientBackendWithRetries) {
  SKIP_WITHOUT_INJECTION();
  // The full imaging loop on a supervised backend: a transient kernel fault
  // during the run is retried away and the result matches the fault-free
  // loop bit for bit — recovery composes with the highest-level consumer.
  auto c = CleanSetup::make();
  c.config.nr_major_cycles = 2;
  auto plain = make_backend("synchronous", c.s.params);
  const auto reference = c.run(*plain);

  fault::Injector::instance().arm_from_spec(
      "processor.grid.kernel@0=throw:1");
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0;
  auto resilient = make_resilient_backend(
      make_backend("synchronous", c.s.params), nullptr, cfg);
  const auto supervised = c.run(*resilient);

  const auto* rb = dynamic_cast<const ResilientBackend*>(resilient.get());
  ASSERT_NE(rb, nullptr);
  EXPECT_GE(rb->report().retried_work_groups, 1u);
  EXPECT_EQ(supervised.total_components, reference.total_components);
  EXPECT_TRUE(
      grids_bit_identical(supervised.model_image, reference.model_image));
  EXPECT_TRUE(grids_bit_identical(supervised.residual_image,
                                  reference.residual_image));
}

}  // namespace
