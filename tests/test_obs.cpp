// Tests for the observability layer (src/obs/): sinks, spans, latency
// histograms, the timeline tracer, registry, exporters (golden-file schema
// pin), the BoundedQueue pipeline primitive, backend factory/parity, and
// descriptive parameter validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/threadpool.hpp"
#include "golden_snapshot.hpp"
#include "idg/backend.hpp"
#include "idg/parameters.hpp"
#include "idg/pipelined.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/wplane.hpp"
#include "json_mini.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/perfcounters.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;

/// Installs a TraceSink for the test's scope and removes it on exit, so
/// tests never leak the process-global into each other.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::size_t capacity = std::size_t{1} << 12)
      : sink_(capacity) {
    obs::set_global_trace(&sink_);
  }
  ~ScopedTrace() { obs::set_global_trace(nullptr); }
  obs::TraceSink& sink() { return sink_; }

 private:
  obs::TraceSink sink_;
};

// --- AggregateSink ------------------------------------------------------------

TEST(AggregateSinkTest, AccumulatesSecondsInvocationsAndOps) {
  obs::AggregateSink sink;
  sink.record("gridder", 1.0);
  sink.record("gridder", 0.5, 2);
  OpCounts ops;
  ops.fma = 17;
  ops.sincos = 1;
  sink.record_ops("gridder", ops);
  sink.record_ops("gridder", ops);

  const auto snapshot = sink.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const auto& m = snapshot.at("gridder");
  EXPECT_DOUBLE_EQ(m.seconds, 1.5);
  EXPECT_EQ(m.invocations, 3u);
  EXPECT_EQ(m.ops.fma, 34u);
  EXPECT_EQ(m.ops.sincos, 2u);
  EXPECT_DOUBLE_EQ(sink.seconds("gridder"), 1.5);
  EXPECT_DOUBLE_EQ(sink.seconds("absent"), 0.0);
  EXPECT_DOUBLE_EQ(sink.total_seconds(), 1.5);
}

TEST(AggregateSinkTest, MergeCombinesSnapshots) {
  obs::AggregateSink a, b;
  a.record("x", 1.0);
  b.record("x", 2.0);
  b.record("y", 3.0);
  a.merge(b.snapshot());
  EXPECT_DOUBLE_EQ(a.seconds("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.seconds("y"), 3.0);
  a.clear();
  EXPECT_TRUE(a.snapshot().empty());
}

TEST(AggregateSinkTest, ConcurrentRecordingIsLossless) {
  obs::AggregateSink sink;
  constexpr int kThreads = 8;
  constexpr int kRecords = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kRecords; ++i) sink.record("stage", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  const auto snapshot = sink.snapshot();
  EXPECT_EQ(snapshot.at("stage").invocations,
            static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_NEAR(snapshot.at("stage").seconds, kThreads * kRecords * 0.001,
              1e-9);
}

// --- Span ---------------------------------------------------------------------

TEST(SpanTest, RecordsOneInvocationWithNonNegativeTime) {
  obs::AggregateSink sink;
  { obs::Span span(sink, "work"); }
  const auto snapshot = sink.snapshot();
  EXPECT_EQ(snapshot.at("work").invocations, 1u);
  EXPECT_GE(snapshot.at("work").seconds, 0.0);
}

TEST(SpanTest, StopIsIdempotent) {
  obs::AggregateSink sink;
  {
    obs::Span span(sink, "work");
    span.stop();
    span.stop();  // second stop and the destructor must both be no-ops
  }
  EXPECT_EQ(sink.snapshot().at("work").invocations, 1u);
}

// --- StageTimesSink adapter ----------------------------------------------------

TEST(StageTimesSinkTest, ForwardsSecondsIntoStageTimes) {
  StageTimes times;
  obs::StageTimesSink adapter(times);
  adapter.record("gridder", 0.75);
  adapter.record("gridder", 0.25);
  OpCounts ops;
  ops.fma = 1;
  adapter.record_ops("gridder", ops);  // dropped by design
  EXPECT_DOUBLE_EQ(times.get("gridder"), 1.0);
}

// --- Registry -----------------------------------------------------------------

TEST(RegistryTest, NamedSinksAreProcessWideAndThreadSafe) {
  obs::AggregateSink& sink = obs::Registry::instance().sink("test-registry");
  sink.clear();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      // Same name from any thread resolves to the same sink.
      obs::Registry::instance().sink("test-registry").record("s", 1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.snapshot().at("s").invocations, 4u);
  EXPECT_DOUBLE_EQ(sink.seconds("s"), 4.0);

  const auto names = obs::Registry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-registry"),
            names.end());
  sink.clear();
}

TEST(RegistryTest, CombinedSnapshotMergesAllSinks) {
  obs::Registry::instance().sink("combine-a").clear();
  obs::Registry::instance().sink("combine-b").clear();
  obs::Registry::instance().sink("combine-a").record("shared", 1.0);
  obs::Registry::instance().sink("combine-b").record("shared", 2.0);
  const auto combined = obs::Registry::instance().combined_snapshot();
  EXPECT_DOUBLE_EQ(combined.at("shared").seconds, 3.0);
  obs::Registry::instance().sink("combine-a").clear();
  obs::Registry::instance().sink("combine-b").clear();
}

// --- LatencyHistogram ----------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwo) {
  using H = obs::LatencyHistogram;
  EXPECT_EQ(H::bucket_of_ns(0), 0u);
  EXPECT_EQ(H::bucket_of_ns(1), 1u);
  // For every bucket b >= 1: [2^(b-1), 2^b) ns lands in bucket b, and the
  // reported bounds bracket exactly that interval.
  for (std::size_t b = 1; b + 1 < H::kNrBuckets; ++b) {
    const std::uint64_t lo = H::lower_bound_ns(b);
    const std::uint64_t hi = H::upper_bound_ns(b);
    EXPECT_EQ(hi, 2 * lo);
    EXPECT_EQ(H::bucket_of_ns(lo), b) << "lower bound of bucket " << b;
    EXPECT_EQ(H::bucket_of_ns(hi - 1), b) << "last ns of bucket " << b;
    EXPECT_EQ(H::bucket_of_ns(hi), b + 1) << "upper bound opens bucket "
                                          << b + 1;
  }
  // Everything past the last boundary clamps into the overflow bucket.
  EXPECT_EQ(H::bucket_of_ns(~std::uint64_t{0}), H::kNrBuckets - 1);
  EXPECT_EQ(H::bucket_of_seconds(1e12), H::kNrBuckets - 1);
  EXPECT_EQ(H::bucket_of_seconds(-1.0), 0u);
}

TEST(LatencyHistogramTest, PercentilesInterpolateDeterministically) {
  obs::LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty histogram

  // 100 samples of ~1us: every percentile stays inside 1us's bucket.
  for (int i = 0; i < 100; ++i) h.add(1e-6);
  const std::size_t b = obs::LatencyHistogram::bucket_of_seconds(1e-6);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.percentile(q), obs::LatencyHistogram::lower_bound_seconds(b));
    EXPECT_LE(h.percentile(q), obs::LatencyHistogram::upper_bound_seconds(b));
  }
  EXPECT_LE(h.percentile(0.5), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));

  // A clear outlier drags p99 into a higher bucket than p50.
  h.add(1.0);
  EXPECT_GT(h.percentile(0.999), h.percentile(0.5));
  EXPECT_EQ(h.samples(), 101u);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndCommutative) {
  obs::LatencyHistogram a, b, c;
  for (int i = 0; i < 5; ++i) a.add(1e-6);
  for (int i = 0; i < 7; ++i) b.add(1e-3);
  c.add(0.0);
  c.add(2.5);

  obs::LatencyHistogram ab_c = a;
  ab_c += b;
  ab_c += c;
  obs::LatencyHistogram bc = b;
  bc += c;
  obs::LatencyHistogram a_bc = a;
  a_bc += bc;
  EXPECT_EQ(ab_c, a_bc);

  obs::LatencyHistogram ba = b;
  ba += a;
  obs::LatencyHistogram ab = a;
  ab += b;
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab_c.samples(), 14u);
}

TEST(LatencyHistogramTest, SinkSamplesOnlySingleInvocationRecords) {
  obs::AggregateSink sink;
  sink.record("s", 0.5);      // single span -> sampled
  sink.record("s", 1.0, 4);   // bulk record -> totals only
  const auto m = sink.snapshot().at("s");
  EXPECT_EQ(m.invocations, 5u);
  EXPECT_DOUBLE_EQ(m.seconds, 1.5);
  EXPECT_EQ(m.latency.samples(), 1u);
}

// --- exporters (golden files) --------------------------------------------------

using idg::testgolden::golden_snapshot;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(ExportTest, JsonMatchesGoldenFile) {
  const std::string golden =
      read_file(std::string(IDG_TEST_GOLDEN_DIR) + "/metrics.json");
  EXPECT_EQ(obs::to_json(golden_snapshot()), golden);
}

TEST(ExportTest, CsvMatchesGoldenFile) {
  const std::string golden =
      read_file(std::string(IDG_TEST_GOLDEN_DIR) + "/metrics.csv");
  EXPECT_EQ(obs::to_csv(golden_snapshot()), golden);
}

TEST(ExportTest, EmptySnapshotIsValidJson) {
  const std::string json = obs::to_json({});
  EXPECT_NE(json.find("\"schema\": \"idg-obs/v8\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\": []"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\": 0"), std::string::npos);
  EXPECT_NO_THROW(testjson::parse(json));
}

TEST(ExportTest, JsonParsesAndCarriesLatencyPercentiles) {
  const auto doc = testjson::parse(obs::to_json(golden_snapshot()));
  EXPECT_EQ(doc.at("schema").string, "idg-obs/v8");
  const auto& stages = doc.at("stages");
  ASSERT_EQ(stages.array.size(), 5u);
  // Stages sort by name: adder (one sampled span), gridder (bulk), server
  // (daemon counters — the v8 addition), shard (coordinator counters —
  // the v7 addition), then supervisor (recovery counters only — the v5
  // addition).
  const auto& adder = stages.at(0);
  EXPECT_EQ(adder.at("name").string, "adder");
  const auto& latency = adder.at("latency");
  EXPECT_EQ(latency.at("samples").number, 1.0);
  EXPECT_GT(latency.at("p50").number, 0.0);
  EXPECT_LE(latency.at("p50").number, latency.at("p99").number);
  ASSERT_EQ(latency.at("buckets").array.size(), 1u);
  EXPECT_EQ(latency.at("buckets").at(0).at("count").number, 1.0);
  // The single 0.25 s sample's bucket brackets 0.25 s.
  EXPECT_GT(latency.at("buckets").at(0).at("le").number, 0.25);
  const auto& gridder = stages.at(1);
  EXPECT_EQ(gridder.at("latency").at("samples").number, 0.0);
  EXPECT_EQ(gridder.at("latency").at("buckets").array.size(), 0u);
  EXPECT_EQ(gridder.at("retried_work_groups").number, 0.0);
  const auto& server = stages.at(2);
  EXPECT_EQ(server.at("name").string, "server");
  const auto& server_block = server.at("server");
  EXPECT_EQ(server_block.at("jobs_admitted").number, 6.0);
  EXPECT_EQ(server_block.at("jobs_rejected").number, 3.0);
  EXPECT_EQ(server_block.at("queue_full_rejections").number, 1.0);
  EXPECT_EQ(server_block.at("quota_rejections").number, 2.0);
  EXPECT_EQ(server_block.at("jobs_completed").number, 3.0);
  EXPECT_EQ(server_block.at("jobs_checkpointed").number, 1.0);
  const auto& shard = stages.at(3);
  EXPECT_EQ(shard.at("name").string, "shard");
  const auto& shard_block = shard.at("shard");
  EXPECT_EQ(shard_block.at("workers_spawned").number, 4.0);
  EXPECT_EQ(shard_block.at("workers_respawned").number, 1.0);
  EXPECT_EQ(shard_block.at("shards_dispatched").number, 9.0);
  EXPECT_EQ(shard_block.at("shards_rebalanced").number, 2.0);
  EXPECT_EQ(shard_block.at("shards_quarantined").number, 1.0);
  EXPECT_EQ(shard_block.at("merge_seconds").number, 0.125);
  const auto& supervisor = stages.at(4);
  EXPECT_EQ(supervisor.at("name").string, "supervisor");
  EXPECT_EQ(supervisor.at("retried_work_groups").number, 2.0);
  EXPECT_EQ(supervisor.at("quarantined_work_groups").number, 1.0);
  EXPECT_EQ(supervisor.at("backend_failovers").number, 1.0);
}

TEST(ExportTest, EscapesStageNames) {
  obs::AggregateSink sink;
  sink.record("weird\"stage\\name", 1.0);
  const std::string json = obs::to_json(sink.snapshot());
  EXPECT_NE(json.find("\"weird\\\"stage\\\\name\""), std::string::npos);
}

// --- hardware perf_event counters (obs/perfcounters.hpp, DESIGN.md §15) -------

TEST(PerfCountersTest, MultiplexScalingMatchesSyntheticRatios) {
  // Ran the whole window: raw passes through unscaled.
  EXPECT_EQ(obs::scale_multiplexed(1000, 500, 500), 1000u);
  EXPECT_EQ(obs::scale_multiplexed(1000, 500, 800), 1000u);
  // Ran half the window: extrapolate by 2 (perf stat's estimate).
  EXPECT_EQ(obs::scale_multiplexed(1000, 1000, 500), 2000u);
  // One third, with rounding to nearest.
  EXPECT_EQ(obs::scale_multiplexed(100, 3000, 1000), 300u);
  EXPECT_EQ(obs::scale_multiplexed(1, 3, 2), 2u);  // 1.5 rounds up
  // Never scheduled: nothing was counted, whatever raw claims.
  EXPECT_EQ(obs::scale_multiplexed(1000, 500, 0), 0u);
  EXPECT_EQ(obs::scale_multiplexed(0, 1000, 500), 0u);
}

TEST(PerfCountersTest, DeltaAppliesScalingPerWindow) {
  using Raw = obs::PerfCounterSession::RawSample;
  Raw begin, end;
  begin.valid = end.valid = true;
  begin.time_enabled_ns = 1000;
  begin.time_running_ns = 1000;
  end.time_enabled_ns = 3000;   // window enabled 2000 ns...
  end.time_running_ns = 2000;   // ...but only counting for 1000 ns
  for (std::size_t i = 0; i < obs::kNrHwCounters; ++i) {
    begin.present[i] = end.present[i] = true;
    begin.value[i] = 100;
    end.value[i] = 100 + 50 * (i + 1);  // raw deltas 50, 100, 150, ...
  }
  begin.task_clock_present = end.task_clock_present = true;
  begin.task_clock_ns = 500;
  end.task_clock_ns = 2500;

  const obs::HwCounters hw = obs::PerfCounterSession::delta(begin, end);
  EXPECT_EQ(hw.samples, 1u);
  // Every group member extrapolated by enabled/running = 2.
  EXPECT_EQ(hw.cycles, 100u);
  EXPECT_EQ(hw.instructions, 200u);
  EXPECT_EQ(hw.llc_loads, 300u);
  EXPECT_EQ(hw.llc_misses, 400u);
  EXPECT_EQ(hw.stalled_cycles_backend, 500u);
  // The task clock lives on its own fd: delta is never scaled.
  EXPECT_EQ(hw.task_clock_ns, 2000u);
  EXPECT_EQ(hw.time_enabled_ns, 2000u);
  EXPECT_EQ(hw.time_running_ns, 1000u);
  EXPECT_DOUBLE_EQ(hw.multiplex_fraction(), 0.5);
}

TEST(PerfCountersTest, DeltaSkipsAbsentCountersAndInvalidSamples) {
  using Raw = obs::PerfCounterSession::RawSample;
  Raw begin, end;
  begin.valid = end.valid = true;
  begin.time_enabled_ns = 0;
  begin.time_running_ns = 0;
  end.time_enabled_ns = 100;
  end.time_running_ns = 100;
  // Only cycles and instructions opened (e.g. a VM without LLC events).
  for (auto i : {obs::kHwCycles, obs::kHwInstructions}) {
    begin.present[i] = end.present[i] = true;
    end.value[i] = 42;
  }
  end.value[obs::kHwLlcLoads] = 9999;  // garbage in an absent slot
  obs::HwCounters hw = obs::PerfCounterSession::delta(begin, end);
  EXPECT_EQ(hw.samples, 1u);
  EXPECT_EQ(hw.cycles, 42u);
  EXPECT_EQ(hw.llc_loads, 0u);  // absent counter contributes nothing
  EXPECT_EQ(hw.task_clock_ns, 0u);

  // An invalid endpoint yields the empty (samples == 0) result.
  end.valid = false;
  hw = obs::PerfCounterSession::delta(begin, end);
  EXPECT_EQ(hw.samples, 0u);
  EXPECT_FALSE(hw.any());
}

TEST(PerfCountersTest, HwCountersDerivedRatesAndMerge) {
  obs::HwCounters a;
  a.samples = 1;
  a.cycles = 1000;
  a.instructions = 2500;
  a.llc_loads = 200;
  a.llc_misses = 50;
  a.time_enabled_ns = 100;
  a.time_running_ns = 100;
  EXPECT_DOUBLE_EQ(a.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(a.llc_miss_rate(), 0.25);
  EXPECT_EQ(a.llc_miss_bytes(), 50u * 64u);
  EXPECT_DOUBLE_EQ(a.multiplex_fraction(), 1.0);

  obs::HwCounters b = a;
  b.cycles = 3000;
  a += b;
  EXPECT_EQ(a.samples, 2u);
  EXPECT_EQ(a.cycles, 4000u);
  EXPECT_EQ(a.instructions, 5000u);

  // Zero denominators stay finite.
  const obs::HwCounters zero;
  EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(zero.llc_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(zero.multiplex_fraction(), 1.0);
  EXPECT_FALSE(zero.any());
}

TEST(PerfCountersTest, AggregateSinkAccumulatesHwPerStage) {
  obs::AggregateSink sink;
  obs::HwCounters hw;
  hw.samples = 1;
  hw.cycles = 10;
  hw.instructions = 20;
  sink.record_hw("gridder", hw);
  sink.record_hw("gridder", hw);
  sink.record_hw("adder", hw);
  const auto snap = sink.snapshot();
  EXPECT_EQ(snap.at("gridder").hw.samples, 2u);
  EXPECT_EQ(snap.at("gridder").hw.cycles, 20u);
  EXPECT_EQ(snap.at("adder").hw.samples, 1u);
  // record_hw alone creates no wall time / invocations.
  EXPECT_EQ(snap.at("gridder").invocations, 0u);
}

TEST(PerfCountersTest, JsonOmitsHwBlockWithoutRecordedCounters) {
  // The golden fixture never records counters: the schema bump to v6 must
  // not change the export byte for byte beyond the version line, so a
  // counter-less snapshot serializes with no "hw" key at all.
  const std::string json = obs::to_json(golden_snapshot());
  EXPECT_EQ(json.find("\"hw\""), std::string::npos);
}

TEST(PerfCountersTest, HwBlockExportedWhenRecorded) {
  obs::AggregateSink sink;
  sink.record("gridder", 2.0);
  obs::HwCounters hw;
  hw.samples = 3;
  hw.cycles = 1000;
  hw.instructions = 1500;
  hw.llc_loads = 100;
  hw.llc_misses = 25;
  hw.stalled_cycles_backend = 80;
  hw.task_clock_ns = 123456;
  hw.time_enabled_ns = 200;
  hw.time_running_ns = 100;
  sink.record_hw("gridder", hw);
  sink.record("idle", 1.0);  // no counters: stays hw-less in the same doc

  const auto doc = testjson::parse(obs::to_json(sink.snapshot()));
  const auto& gridder = doc.at("stages").at(0);
  ASSERT_EQ(gridder.at("name").string, "gridder");
  const auto& block = gridder.at("hw");
  EXPECT_EQ(block.at("samples").number, 3.0);
  EXPECT_EQ(block.at("cycles").number, 1000.0);
  EXPECT_EQ(block.at("instructions").number, 1500.0);
  EXPECT_EQ(block.at("llc_loads").number, 100.0);
  EXPECT_EQ(block.at("llc_misses").number, 25.0);
  EXPECT_EQ(block.at("stalled_cycles_backend").number, 80.0);
  EXPECT_EQ(block.at("task_clock_ns").number, 123456.0);
  EXPECT_EQ(block.at("llc_miss_bytes").number, 1600.0);
  EXPECT_DOUBLE_EQ(block.at("ipc").number, 1.5);
  EXPECT_DOUBLE_EQ(block.at("llc_miss_rate").number, 0.25);
  EXPECT_DOUBLE_EQ(block.at("multiplex_fraction").number, 0.5);
  const auto& idle = doc.at("stages").at(1);
  ASSERT_EQ(idle.at("name").string, "idle");
  EXPECT_THROW((void)idle.at("hw"), std::exception);
}

TEST(PerfCountersTest, ScopedCountersNoopWithoutSession) {
  ASSERT_EQ(obs::global_perf_session(), nullptr);
  obs::ScopedCounters window;
  EXPECT_FALSE(window.active());
  obs::HwCounters hw;
  EXPECT_FALSE(window.stop(hw));
  EXPECT_FALSE(hw.any());
  // Spans keep working (and record no hw) with no session installed.
  obs::AggregateSink sink;
  { obs::Span span(sink, "stage"); }
  EXPECT_FALSE(sink.snapshot().at("stage").hw.any());
  obs::warm_thread_counters();  // no-op, must not crash
}

TEST(PerfCountersTest, PerfMetricsSinkForwardsAndAggregates) {
  obs::AggregateSink inner;
  obs::PerfMetricsSink sink(inner);
  sink.record("gridder", 1.5);
  sink.record_ops("gridder", OpCounts{});
  obs::HwCounters hw;
  hw.samples = 1;
  hw.instructions = 7;
  sink.record_hw("gridder", hw);
  sink.record_hw("gridder", hw);

  // Forwarded into the wrapped sink...
  const auto snap = inner.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("gridder").seconds, 1.5);
  EXPECT_EQ(snap.at("gridder").hw.samples, 2u);
  // ...and aggregated by the decorator itself (survives inner sinks that
  // ignore record_hw, e.g. NullSink).
  const auto totals = sink.hw_totals();
  ASSERT_EQ(totals.count("gridder"), 1u);
  EXPECT_EQ(totals.at("gridder").samples, 2u);
  EXPECT_EQ(totals.at("gridder").instructions, 14u);

  obs::PerfMetricsSink null_wrapped(obs::null_sink());
  null_wrapped.record_hw("adder", hw);
  EXPECT_EQ(null_wrapped.hw_totals().at("adder").instructions, 7u);
}

TEST(PerfCountersTest, ProbeReportsParanoidLevelAndNamedReason) {
  const obs::PerfProbe probe = obs::probe_perf_counters();
  EXPECT_FALSE(probe.detail.empty());
  if (probe.paranoid_level != obs::kPerfParanoidUnknown) {
    // Real /proc values are small integers (-1..4 across kernels).
    EXPECT_GE(probe.paranoid_level, -1);
    EXPECT_LE(probe.paranoid_level, 4);
  }
  if (!probe.available) {
    // The refusal is named, never silent.
    EXPECT_NE(probe.detail, "ok");
  }
}

TEST(PerfCountersTest, DisableEnvForcesStub) {
  ::setenv("IDG_PERF_DISABLE", "1", 1);
  std::string why;
  auto session = obs::PerfCounterSession::open(&why);
  EXPECT_EQ(session, nullptr);
  EXPECT_NE(why.find("IDG_PERF_DISABLE"), std::string::npos);
  const obs::PerfProbe probe = obs::probe_perf_counters();
  EXPECT_FALSE(probe.available);
  ::unsetenv("IDG_PERF_DISABLE");
}

TEST(PerfCountersTest, LiveSessionMeasuresSpansWhenAvailable) {
  std::string why;
  auto session = obs::PerfCounterSession::open(&why);
  if (session == nullptr) {
    GTEST_SKIP() << "hw counters unavailable on this host: " << why;
  }
  obs::set_global_perf_session(session.get());
  obs::AggregateSink sink;
  {
    obs::Span span(sink, "busy");
    // Enough user-space work that cycles/instructions cannot round to 0.
    volatile double x = 1.0;
    for (int i = 0; i < 200000; ++i) x = x * 1.0000001 + 1e-9;
  }
  obs::set_global_perf_session(nullptr);

  const auto m = sink.snapshot().at("busy");
  EXPECT_EQ(m.invocations, 1u);
  ASSERT_TRUE(m.hw.any());
  EXPECT_GT(m.hw.cycles, 0u);
  EXPECT_GT(m.hw.instructions, 0u);
  EXPECT_GT(m.hw.time_enabled_ns, 0u);
  // The hw block then shows up in the v6 export.
  const auto doc = testjson::parse(obs::to_json(sink.snapshot()));
  EXPECT_GT(doc.at("stages").at(0).at("hw").at("cycles").number, 0.0);
}

// --- BoundedQueue --------------------------------------------------------------

TEST(BoundedQueueTest, DrainsRemainingItemsAfterClose) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.push(3);
  queue.close();
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queue.pop(out));  // drained + closed
  EXPECT_FALSE(queue.pop(out));  // stays closed
}

TEST(BoundedQueueTest, PopUnblocksOnClose) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.pop(out));
    returned = true;
  });
  // The consumer is (very likely) blocked in pop(); close() must wake it.
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(BoundedQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(3);  // small capacity forces back-pressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i)
        queue.push(p * kPerProducer + i);
    });
  }
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      int value = 0;
      while (queue.pop(value)) seen[static_cast<std::size_t>(value)]++;
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "item " << i;
}

TEST(BoundedQueueTest, TracksDepthHighWaterMarkWithinCapacity) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  EXPECT_EQ(queue.max_depth(), 0u);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.max_depth(), 2u);
  int out = 0;
  queue.pop(out);
  queue.push(3);
  queue.push(4);
  EXPECT_EQ(queue.max_depth(), 3u);  // never exceeds the bound
  EXPECT_LE(queue.max_depth(), queue.capacity());
}

// --- TraceSink ------------------------------------------------------------------

TEST(TraceTest, GlobalTraceIsNullByDefault) {
  EXPECT_EQ(obs::global_trace(), nullptr);
  {
    ScopedTrace trace;
    EXPECT_EQ(obs::global_trace(), &trace.sink());
  }
  EXPECT_EQ(obs::global_trace(), nullptr);
}

TEST(TraceTest, RecordsSpansCountersAndThreadNames) {
  obs::TraceSink sink;
  sink.set_thread_name("tester");
  const char* work = sink.intern("work");
  const char* depth = sink.intern("queue-depth");
  EXPECT_EQ(work, sink.intern("work"));  // interning is idempotent
  const std::int64_t t0 = sink.now_ns();
  sink.record_span(work, t0, 100, /*group=*/7);
  sink.record_counter(depth, 3);
  sink.record_instant(sink.intern("marker"));

  const auto tracks = sink.collect();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].name, "tester");
  EXPECT_EQ(tracks[0].dropped, 0u);
  ASSERT_EQ(tracks[0].events.size(), 3u);
  const auto& span = tracks[0].events[0];
  EXPECT_EQ(span.kind, obs::TraceEvent::Kind::kSpan);
  EXPECT_STREQ(span.name, "work");
  EXPECT_EQ(span.ts_ns, t0);
  EXPECT_EQ(span.dur_ns, 100);
  EXPECT_EQ(span.value, 7);
  EXPECT_EQ(tracks[0].events[1].kind, obs::TraceEvent::Kind::kCounter);
  EXPECT_EQ(tracks[0].events[1].value, 3);
}

TEST(TraceTest, EachThreadGetsItsOwnTrack) {
  obs::TraceSink sink;
  const char* name = sink.intern("t");
  sink.record_instant(name);  // main thread's track
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) sink.record_instant(name);
    });
  }
  for (auto& t : threads) t.join();
  const auto tracks = sink.collect();
  ASSERT_EQ(tracks.size(), 4u);
  std::size_t total = 0;
  std::set<int> tids;
  for (const auto& track : tracks) {
    tids.insert(track.tid);
    total += track.events.size();
  }
  EXPECT_EQ(tids.size(), 4u);  // distinct tids
  EXPECT_EQ(total, 31u);       // nothing lost
}

TEST(TraceTest, RingBufferDropsOldestAndCountsThem) {
  obs::TraceSink sink(/*capacity_per_thread=*/8);
  const char* name = sink.intern("e");
  for (std::int64_t i = 0; i < 20; ++i) sink.record_span(name, i, 1);
  const auto tracks = sink.collect();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].events.size(), 8u);
  EXPECT_EQ(tracks[0].dropped, 12u);
  // Oldest-first of the *surviving* window: begins at ts 12.
  EXPECT_EQ(tracks[0].events.front().ts_ns, 12);
  EXPECT_EQ(tracks[0].events.back().ts_ns, 19);
}

TEST(TraceTest, ChromeJsonIsValidAndCompletesTracks) {
  obs::TraceSink sink;
  sink.set_thread_name("main");
  sink.record_span(sink.intern("stage-a"), 0, 1000, 0);
  sink.record_counter(sink.intern("depth"), 2);
  const auto doc = testjson::parse(sink.to_chrome_json());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  bool saw_span = false, saw_counter = false, saw_thread_name = false;
  for (const auto& e : events.array) {
    const std::string ph = e.at("ph").string;
    if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(e.at("name").string, "stage-a");
      EXPECT_EQ(e.at("dur").number, 1.0);  // 1000 ns = 1 us
      EXPECT_EQ(e.at("args").at("group").number, 0.0);
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_EQ(e.at("args").at("value").number, 2.0);
    } else if (ph == "M" && e.at("name").string == "thread_name") {
      saw_thread_name = true;
      EXPECT_EQ(e.at("args").at("name").string, "main");
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_thread_name);
}

TEST(TraceTest, SpanEmitsTraceEventWhenGlobalTraceInstalled) {
  ScopedTrace trace;
  obs::AggregateSink sink;
  { obs::Span span(sink, "traced-stage", /*group=*/5); }
  const auto tracks = trace.sink().collect();
  ASSERT_EQ(tracks.size(), 1u);
  ASSERT_EQ(tracks[0].events.size(), 1u);
  const auto& e = tracks[0].events[0];
  EXPECT_EQ(e.kind, obs::TraceEvent::Kind::kSpan);
  EXPECT_STREQ(e.name, "traced-stage");
  EXPECT_EQ(e.value, 5);
  EXPECT_GE(e.dur_ns, 0);
  // The aggregate sink still saw the span as usual.
  EXPECT_EQ(sink.snapshot().at("traced-stage").invocations, 1u);
}

TEST(TraceTest, InstrumentedQueueEmitsDepthSamplesWithinBound) {
  ScopedTrace trace;
  BoundedQueue<int> queue(2);
  queue.instrument("test-queue");
  queue.push(1);
  queue.push(2);
  int out = 0;
  queue.pop(out);
  queue.pop(out);
  std::int64_t samples = 0;
  for (const auto& track : trace.sink().collect()) {
    for (const auto& e : track.events) {
      ASSERT_EQ(e.kind, obs::TraceEvent::Kind::kCounter);
      EXPECT_STREQ(e.name, "test-queue");
      EXPECT_GE(e.value, 0);
      EXPECT_LE(e.value, 2);  // never exceeds the queue's bound
      ++samples;
    }
  }
  EXPECT_EQ(samples, 4);  // one per push + one per pop
}

TEST(TraceTest, InstrumentedWorkerPoolTracksOccupancy) {
  ScopedTrace trace;
  WorkerPool pool(3);
  pool.instrument("test-pool");
  EXPECT_EQ(pool.max_active(), 0u);
  std::atomic<int> done{0};
  pool.parallel_for(64, [&](std::size_t) {
    ++done;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  EXPECT_EQ(done, 64);
  EXPECT_GE(pool.max_active(), 1u);
  EXPECT_LE(pool.max_active(), pool.nr_threads());
  for (const auto& track : trace.sink().collect()) {
    for (const auto& e : track.events) {
      if (e.kind != obs::TraceEvent::Kind::kCounter) continue;
      EXPECT_GE(e.value, 0);
      EXPECT_LE(e.value, static_cast<std::int64_t>(pool.nr_threads()));
    }
  }
}

// --- backend factory and parity -------------------------------------------------

struct Setup {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;

  static Setup make() {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 6;
    cfg.nr_timesteps = 32;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    cfg.subgrid_size = 16;
    auto ds = sim::make_benchmark_dataset(cfg);

    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = cfg.nr_stations;
    params.kernel_size = 4;
    params.work_group_size = 4;  // several work groups in flight
    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    auto aterms =
        sim::make_identity_aterms(1, cfg.nr_stations, cfg.subgrid_size);
    return {std::move(ds), params, std::move(plan), std::move(aterms)};
  }
};

TEST(BackendTest, FactoryCreatesEveryListedBackend) {
  Parameters params;
  params.image_size = 0.01;
  for (const auto& name : backend_names()) {
    auto backend = make_backend(name, params);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), name);
    EXPECT_EQ(backend->parameters().grid_size, params.grid_size);
  }
}

TEST(BackendTest, FactoryAcceptsAliases) {
  Parameters params;
  params.image_size = 0.01;
  EXPECT_EQ(make_backend("sync", params)->name(), "synchronous");
  EXPECT_EQ(make_backend("async", params)->name(), "pipelined");
}

TEST(BackendTest, FactoryRejectsUnknownNamesDescriptively) {
  Parameters params;
  params.image_size = 0.01;
  try {
    make_backend("gpu", params);
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpu"), std::string::npos);
    EXPECT_NE(what.find("pipelined"), std::string::npos);
    EXPECT_NE(what.find("synchronous"), std::string::npos);
  }
}

TEST(BackendTest, ProcessorAndPipelinedReportIdenticalOpCounts) {
  auto s = Setup::make();
  ASSERT_GT(s.plan.nr_work_groups(), 1u);

  auto sync = make_backend("synchronous", s.params);
  auto pipelined = make_backend("pipelined", s.params);

  Array3D<cfloat> grid_sync(4, s.params.grid_size, s.params.grid_size);
  Array3D<cfloat> grid_async(4, s.params.grid_size, s.params.grid_size);
  obs::AggregateSink sink_sync, sink_async;

  // Grid both from the same input, then degrid into separate buffers
  // (degridding overwrites the covered visibility entries).
  sync->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
             s.aterms.cview(), grid_sync.view(), sink_sync);
  pipelined->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
                  s.aterms.cview(), grid_async.view(), sink_async);
  Array3D<Visibility> vis_sync(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                               s.ds.nr_channels());
  Array3D<Visibility> vis_async(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                s.ds.nr_channels());
  sync->degrid(s.plan, s.ds.uvw.cview(), grid_sync.cview(), s.aterms.cview(),
               vis_sync.view(), sink_sync);
  pipelined->degrid(s.plan, s.ds.uvw.cview(), grid_async.cview(),
                    s.aterms.cview(), vis_async.view(), sink_async);

  const auto a = sink_sync.snapshot();
  const auto b = sink_async.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [stage_name, ma] : a) {
    ASSERT_TRUE(b.count(stage_name)) << stage_name;
    const auto& mb = b.at(stage_name);
    // Analytic counters derive from the plan alone: bit-for-bit identical
    // regardless of execution strategy.
    EXPECT_EQ(ma.ops.fma, mb.ops.fma) << stage_name;
    EXPECT_EQ(ma.ops.mul, mb.ops.mul) << stage_name;
    EXPECT_EQ(ma.ops.add, mb.ops.add) << stage_name;
    EXPECT_EQ(ma.ops.sincos, mb.ops.sincos) << stage_name;
    EXPECT_EQ(ma.ops.dev_bytes, mb.ops.dev_bytes) << stage_name;
    EXPECT_EQ(ma.ops.shared_bytes, mb.ops.shared_bytes) << stage_name;
    EXPECT_EQ(ma.ops.visibilities, mb.ops.visibilities) << stage_name;
    EXPECT_EQ(ma.invocations, mb.invocations) << stage_name;
  }

  // And so are the gridded pixels (same kernels, same accumulation order).
  for (std::size_t i = 0; i < grid_sync.size(); ++i) {
    ASSERT_EQ(grid_sync.data()[i], grid_async.data()[i]) << "pixel " << i;
  }
}

TEST(BackendTest, PipelinedThreadsAccumulateIntoOneSink) {
  auto s = Setup::make();
  auto pipelined = make_backend("pipelined", s.params);
  Array3D<cfloat> grid(4, s.params.grid_size, s.params.grid_size);
  obs::AggregateSink sink;
  pipelined->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
                  s.aterms.cview(), grid.view(), sink);
  const auto snapshot = sink.snapshot();
  // Each of the three stages ran once per work group, reported from its own
  // thread into the shared sink.
  const auto groups = s.plan.nr_work_groups();
  EXPECT_EQ(snapshot.at(stage::kGridder).invocations, groups);
  EXPECT_EQ(snapshot.at(stage::kSubgridFft).invocations, groups);
  EXPECT_EQ(snapshot.at(stage::kAdder).invocations, groups);
}

// --- end-to-end pipeline tracing ------------------------------------------------

/// What one traced pipelined grid+degrid run looked like, reduced to its
/// timing-independent content.
struct TraceRunSummary {
  std::multiset<std::pair<std::string, std::int64_t>> spans;  // (stage, group)
  std::set<int> span_tids;
  std::map<std::string, std::size_t> queue_samples;  // per counter track
  std::map<std::string, std::int64_t> queue_max;
  std::string chrome_json;
};

TraceRunSummary traced_pipelined_run(const Setup& s) {
  ScopedTrace trace;
  // Backend created while the trace is installed so queues/pools latch it.
  auto pipelined = make_backend("pipelined", s.params);
  Array3D<cfloat> grid(4, s.params.grid_size, s.params.grid_size);
  Array3D<Visibility> vis(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                          s.ds.nr_channels());
  obs::AggregateSink sink;
  pipelined->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
                  s.aterms.cview(), grid.view(), sink);
  pipelined->degrid(s.plan, s.ds.uvw.cview(), grid.cview(), s.aterms.cview(),
                    vis.view(), sink);

  TraceRunSummary summary;
  for (const auto& track : trace.sink().collect()) {
    EXPECT_EQ(track.dropped, 0u);
    for (const auto& e : track.events) {
      if (e.kind == obs::TraceEvent::Kind::kSpan) {
        summary.spans.emplace(e.name, e.value);
        summary.span_tids.insert(track.tid);
      } else if (e.kind == obs::TraceEvent::Kind::kCounter &&
                 std::string_view(e.name).find("pool") ==
                     std::string_view::npos) {
        // Queue depth sampling is exactly one event per push/pop, hence
        // deterministic; pool occupancy sampling depends on worker wakeup
        // timing and is excluded from the determinism comparison.
        summary.queue_samples[e.name]++;
        auto& mx = summary.queue_max[e.name];
        mx = std::max(mx, e.value);
      }
    }
  }
  summary.chrome_json = trace.sink().to_chrome_json();
  return summary;
}

TEST(PipelinedTraceTest, TimelineShowsConcurrentStagesAndBoundedQueues) {
  auto s = Setup::make();
  const std::size_t groups = s.plan.nr_work_groups();
  ASSERT_GT(groups, 1u);
  const auto run = traced_pipelined_run(s);

  // The paper's Fig 7 structure: stage spans on >= 3 distinct threads
  // (grid kernel + adder threads, degrid splitter/fft/kernel threads).
  EXPECT_GE(run.span_tids.size(), 3u);

  // Every work group left one span per stage, tagged with its group id.
  for (const char* stage_name :
       {stage::kGridder, stage::kAdder, stage::kDegridder, stage::kSplitter}) {
    for (std::size_t g = 0; g < groups; ++g) {
      EXPECT_EQ(run.spans.count({stage_name, static_cast<std::int64_t>(g)}),
                1u)
          << stage_name << " group " << g;
    }
  }
  // The subgrid FFT runs once per group in each direction.
  for (std::size_t g = 0; g < groups; ++g) {
    EXPECT_EQ(run.spans.count({stage::kSubgridFft,
                               static_cast<std::int64_t>(g)}), 2u);
  }

  // All six queue counter tracks reported, with depths within the bound
  // (3 buffers) and deterministic sample counts (one per push/pop).
  ASSERT_EQ(run.queue_samples.size(), 6u);
  for (const auto& [name, mx] : run.queue_max) {
    EXPECT_LE(mx, 3) << name;  // nr_buffers = 3
  }
  EXPECT_EQ(run.queue_samples.at("pipeline:grid:free-buffers"),
            3 + 2 * groups);
  EXPECT_EQ(run.queue_samples.at("pipeline:grid:to-kernel"), 2 * groups);
  EXPECT_EQ(run.queue_samples.at("pipeline:degrid:to-fft"), 2 * groups);

  // The exported Chrome trace is well-formed JSON.
  EXPECT_NO_THROW(testjson::parse(run.chrome_json));
}

TEST(PipelinedTraceTest, TwoIdenticalRunsTraceIdenticalEventSets) {
  auto s = Setup::make();
  const auto a = traced_pipelined_run(s);
  const auto b = traced_pipelined_run(s);
  // Identical modulo timestamps and thread interleaving: same span
  // multiset, same queue sample counts.
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.queue_samples, b.queue_samples);
}

TEST(PipelinedTraceTest, TraceSessionWritesFileAndUninstalls) {
  const std::string path = ::testing::TempDir() + "idg_trace_session.json";
  {
    obs::TraceSession session(path);
    ASSERT_TRUE(session.enabled());
    EXPECT_EQ(obs::global_trace(), session.sink());
    obs::AggregateSink sink;
    { obs::Span span(sink, "session-span"); }
  }
  EXPECT_EQ(obs::global_trace(), nullptr);
  const auto doc = testjson::parse(read_file(path));
  bool found = false;
  for (const auto& e : doc.at("traceEvents").array) {
    if (e.at("ph").string == "X" && e.at("name").string == "session-span") {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  obs::TraceSession disabled("");
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(obs::global_trace(), nullptr);
}

// --- Parameters::validated ------------------------------------------------------

TEST(ParametersTest, ValidConfigurationHasNoError) {
  Parameters params;
  params.image_size = 0.01;
  EXPECT_FALSE(params.validated().has_value());
  EXPECT_NO_THROW(params.validate());
}

TEST(ParametersTest, SubgridLargerThanGridIsDescriptive) {
  Parameters params;
  params.image_size = 0.01;
  params.grid_size = 64;
  params.subgrid_size = 128;
  auto error = params.validated();
  ASSERT_TRUE(error.has_value());
  const std::string what = error->what();
  EXPECT_NE(what.find("subgrid_size (128)"), std::string::npos);
  EXPECT_NE(what.find("grid_size (64)"), std::string::npos);
  EXPECT_THROW(params.validate(), Error);
}

TEST(ParametersTest, EveryInconsistencyIsCaught) {
  const auto error_of = [](auto&& mutate) {
    Parameters params;
    params.image_size = 0.01;
    mutate(params);
    return params.validated();
  };
  EXPECT_TRUE(error_of([](Parameters& p) { p.grid_size = 1; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.subgrid_size = 2; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.image_size = 0.0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.image_size = -1.0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.kernel_size = 0; }));
  EXPECT_TRUE(
      error_of([](Parameters& p) { p.kernel_size = p.subgrid_size; }));
  EXPECT_TRUE(
      error_of([](Parameters& p) { p.max_timesteps_per_subgrid = 0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.aterm_interval = -1; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.work_group_size = 0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.adder_tile_size = 0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.adder_tile_size = 12; }));
}

TEST(ParametersTest, ProcessorRejectsBadParametersAtConstruction) {
  Parameters params;
  params.image_size = 0.01;
  params.subgrid_size = params.grid_size;  // inconsistent
  EXPECT_THROW(Processor{params}, Error);
  EXPECT_THROW(make_backend("pipelined", params), Error);
}

TEST(ParametersTest, EdgeCaseValuesAreCaught) {
  const auto error_of = [](auto&& mutate) {
    Parameters params;
    params.image_size = 0.01;
    mutate(params);
    return params.validated();
  };
  // Non-finite geometry must be rejected, not silently propagated into
  // every subsequent coordinate computation.
  EXPECT_TRUE(error_of(
      [](Parameters& p) { p.image_size = std::numeric_limits<double>::quiet_NaN(); }));
  EXPECT_TRUE(error_of(
      [](Parameters& p) { p.image_size = std::numeric_limits<double>::infinity(); }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.image_size = -0.01; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.subgrid_size = 0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.grid_size = 0; }));
  // Enum fields fed from untrusted config: out-of-range values throw.
  EXPECT_TRUE(error_of([](Parameters& p) {
    p.plan_ordering = static_cast<PlanOrdering>(99);
  }));
  EXPECT_TRUE(error_of([](Parameters& p) {
    p.bad_sample_policy = static_cast<BadSamplePolicy>(-1);
  }));
  EXPECT_TRUE(error_of([](Parameters& p) {
    p.bad_sample_policy = static_cast<BadSamplePolicy>(3);
  }));
  const auto policy_error = error_of([](Parameters& p) {
    p.bad_sample_policy = static_cast<BadSamplePolicy>(7);
  });
  ASSERT_TRUE(policy_error.has_value());
  EXPECT_NE(std::string(policy_error->what()).find("bad_sample_policy"),
            std::string::npos);
}

TEST(ParametersTest, BadSamplePolicyStringRoundtrip) {
  using enum BadSamplePolicy;
  EXPECT_EQ(bad_sample_policy_from_string("reject"), kReject);
  EXPECT_EQ(bad_sample_policy_from_string("zero_and_continue"),
            kZeroAndContinue);
  EXPECT_EQ(bad_sample_policy_from_string("zero"), kZeroAndContinue);
  EXPECT_EQ(bad_sample_policy_from_string("skip_work_group"), kSkipWorkGroup);
  EXPECT_EQ(bad_sample_policy_from_string("skip"), kSkipWorkGroup);
  EXPECT_FALSE(bad_sample_policy_from_string("drop").has_value());
  EXPECT_STREQ(to_string(kReject), "reject");
  EXPECT_STREQ(to_string(kZeroAndContinue), "zero_and_continue");
  EXPECT_STREQ(to_string(kSkipWorkGroup), "skip_work_group");
}

TEST(WPlaneModelTest, RejectsNonPositiveSpacing) {
  EXPECT_THROW(WPlaneModel(8, 0.0), Error);  // nr_planes > 1 needs w_max > 0
  EXPECT_THROW(WPlaneModel(0, 100.0), Error);
  EXPECT_NO_THROW(WPlaneModel(1, 0.0));
  EXPECT_NO_THROW(WPlaneModel(8, 100.0));
}

TEST(PlanTest, RejectsZeroChannelsDescriptively) {
  auto s = Setup::make();
  EXPECT_THROW(Plan(s.params, s.ds.uvw, {}, s.ds.baselines), Error);
}

}  // namespace
