// Tests for the observability layer (src/obs/): sinks, spans, registry,
// exporters (golden-file schema pin), the BoundedQueue pipeline primitive,
// backend factory/parity, and descriptive parameter validation.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "idg/backend.hpp"
#include "idg/parameters.hpp"
#include "idg/pipelined.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/wplane.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;

// --- AggregateSink ------------------------------------------------------------

TEST(AggregateSinkTest, AccumulatesSecondsInvocationsAndOps) {
  obs::AggregateSink sink;
  sink.record("gridder", 1.0);
  sink.record("gridder", 0.5, 2);
  OpCounts ops;
  ops.fma = 17;
  ops.sincos = 1;
  sink.record_ops("gridder", ops);
  sink.record_ops("gridder", ops);

  const auto snapshot = sink.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const auto& m = snapshot.at("gridder");
  EXPECT_DOUBLE_EQ(m.seconds, 1.5);
  EXPECT_EQ(m.invocations, 3u);
  EXPECT_EQ(m.ops.fma, 34u);
  EXPECT_EQ(m.ops.sincos, 2u);
  EXPECT_DOUBLE_EQ(sink.seconds("gridder"), 1.5);
  EXPECT_DOUBLE_EQ(sink.seconds("absent"), 0.0);
  EXPECT_DOUBLE_EQ(sink.total_seconds(), 1.5);
}

TEST(AggregateSinkTest, MergeCombinesSnapshots) {
  obs::AggregateSink a, b;
  a.record("x", 1.0);
  b.record("x", 2.0);
  b.record("y", 3.0);
  a.merge(b.snapshot());
  EXPECT_DOUBLE_EQ(a.seconds("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.seconds("y"), 3.0);
  a.clear();
  EXPECT_TRUE(a.snapshot().empty());
}

TEST(AggregateSinkTest, ConcurrentRecordingIsLossless) {
  obs::AggregateSink sink;
  constexpr int kThreads = 8;
  constexpr int kRecords = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kRecords; ++i) sink.record("stage", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  const auto snapshot = sink.snapshot();
  EXPECT_EQ(snapshot.at("stage").invocations,
            static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_NEAR(snapshot.at("stage").seconds, kThreads * kRecords * 0.001,
              1e-9);
}

// --- Span ---------------------------------------------------------------------

TEST(SpanTest, RecordsOneInvocationWithNonNegativeTime) {
  obs::AggregateSink sink;
  { obs::Span span(sink, "work"); }
  const auto snapshot = sink.snapshot();
  EXPECT_EQ(snapshot.at("work").invocations, 1u);
  EXPECT_GE(snapshot.at("work").seconds, 0.0);
}

TEST(SpanTest, StopIsIdempotent) {
  obs::AggregateSink sink;
  {
    obs::Span span(sink, "work");
    span.stop();
    span.stop();  // second stop and the destructor must both be no-ops
  }
  EXPECT_EQ(sink.snapshot().at("work").invocations, 1u);
}

// --- StageTimesSink adapter ----------------------------------------------------

TEST(StageTimesSinkTest, ForwardsSecondsIntoStageTimes) {
  StageTimes times;
  obs::StageTimesSink adapter(times);
  adapter.record("gridder", 0.75);
  adapter.record("gridder", 0.25);
  OpCounts ops;
  ops.fma = 1;
  adapter.record_ops("gridder", ops);  // dropped by design
  EXPECT_DOUBLE_EQ(times.get("gridder"), 1.0);
}

// --- Registry -----------------------------------------------------------------

TEST(RegistryTest, NamedSinksAreProcessWideAndThreadSafe) {
  obs::AggregateSink& sink = obs::Registry::instance().sink("test-registry");
  sink.clear();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      // Same name from any thread resolves to the same sink.
      obs::Registry::instance().sink("test-registry").record("s", 1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.snapshot().at("s").invocations, 4u);
  EXPECT_DOUBLE_EQ(sink.seconds("s"), 4.0);

  const auto names = obs::Registry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-registry"),
            names.end());
  sink.clear();
}

TEST(RegistryTest, CombinedSnapshotMergesAllSinks) {
  obs::Registry::instance().sink("combine-a").clear();
  obs::Registry::instance().sink("combine-b").clear();
  obs::Registry::instance().sink("combine-a").record("shared", 1.0);
  obs::Registry::instance().sink("combine-b").record("shared", 2.0);
  const auto combined = obs::Registry::instance().combined_snapshot();
  EXPECT_DOUBLE_EQ(combined.at("shared").seconds, 3.0);
  obs::Registry::instance().sink("combine-a").clear();
  obs::Registry::instance().sink("combine-b").clear();
}

// --- exporters (golden files) --------------------------------------------------

obs::MetricsSnapshot golden_snapshot() {
  obs::AggregateSink sink;
  sink.record("gridder", 1.5, 3);
  sink.record("adder", 0.25);
  sink.record_bytes("adder", 786432);
  OpCounts ops;
  ops.fma = 17;
  ops.mul = 8;
  ops.add = 4;
  ops.sincos = 1;
  ops.dev_bytes = 1024;
  ops.shared_bytes = 2048;
  ops.visibilities = 42;
  sink.record_ops("gridder", ops);
  return sink.snapshot();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(ExportTest, JsonMatchesGoldenFile) {
  const std::string golden =
      read_file(std::string(IDG_TEST_GOLDEN_DIR) + "/metrics.json");
  EXPECT_EQ(obs::to_json(golden_snapshot()), golden);
}

TEST(ExportTest, CsvMatchesGoldenFile) {
  const std::string golden =
      read_file(std::string(IDG_TEST_GOLDEN_DIR) + "/metrics.csv");
  EXPECT_EQ(obs::to_csv(golden_snapshot()), golden);
}

TEST(ExportTest, EmptySnapshotIsValidJson) {
  const std::string json = obs::to_json({});
  EXPECT_NE(json.find("\"schema\": \"idg-obs/v2\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\": []"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\": 0.000000000"), std::string::npos);
}

TEST(ExportTest, EscapesStageNames) {
  obs::AggregateSink sink;
  sink.record("weird\"stage\\name", 1.0);
  const std::string json = obs::to_json(sink.snapshot());
  EXPECT_NE(json.find("\"weird\\\"stage\\\\name\""), std::string::npos);
}

// --- BoundedQueue --------------------------------------------------------------

TEST(BoundedQueueTest, DrainsRemainingItemsAfterClose) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.push(3);
  queue.close();
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queue.pop(out));  // drained + closed
  EXPECT_FALSE(queue.pop(out));  // stays closed
}

TEST(BoundedQueueTest, PopUnblocksOnClose) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.pop(out));
    returned = true;
  });
  // The consumer is (very likely) blocked in pop(); close() must wake it.
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned);
}

TEST(BoundedQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(3);  // small capacity forces back-pressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i)
        queue.push(p * kPerProducer + i);
    });
  }
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      int value = 0;
      while (queue.pop(value)) seen[static_cast<std::size_t>(value)]++;
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "item " << i;
}

// --- backend factory and parity -------------------------------------------------

struct Setup {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;

  static Setup make() {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 6;
    cfg.nr_timesteps = 32;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    cfg.subgrid_size = 16;
    auto ds = sim::make_benchmark_dataset(cfg);

    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = cfg.nr_stations;
    params.kernel_size = 4;
    params.work_group_size = 4;  // several work groups in flight
    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    auto aterms =
        sim::make_identity_aterms(1, cfg.nr_stations, cfg.subgrid_size);
    return {std::move(ds), params, std::move(plan), std::move(aterms)};
  }
};

TEST(BackendTest, FactoryCreatesEveryListedBackend) {
  Parameters params;
  params.image_size = 0.01;
  for (const auto& name : backend_names()) {
    auto backend = make_backend(name, params);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), name);
    EXPECT_EQ(backend->parameters().grid_size, params.grid_size);
  }
}

TEST(BackendTest, FactoryAcceptsAliases) {
  Parameters params;
  params.image_size = 0.01;
  EXPECT_EQ(make_backend("sync", params)->name(), "synchronous");
  EXPECT_EQ(make_backend("async", params)->name(), "pipelined");
}

TEST(BackendTest, FactoryRejectsUnknownNamesDescriptively) {
  Parameters params;
  params.image_size = 0.01;
  try {
    make_backend("gpu", params);
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gpu"), std::string::npos);
    EXPECT_NE(what.find("pipelined"), std::string::npos);
    EXPECT_NE(what.find("synchronous"), std::string::npos);
  }
}

TEST(BackendTest, ProcessorAndPipelinedReportIdenticalOpCounts) {
  auto s = Setup::make();
  ASSERT_GT(s.plan.nr_work_groups(), 1u);

  auto sync = make_backend("synchronous", s.params);
  auto pipelined = make_backend("pipelined", s.params);

  Array3D<cfloat> grid_sync(4, s.params.grid_size, s.params.grid_size);
  Array3D<cfloat> grid_async(4, s.params.grid_size, s.params.grid_size);
  obs::AggregateSink sink_sync, sink_async;

  // Grid both from the same input, then degrid into separate buffers
  // (degridding overwrites the covered visibility entries).
  sync->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
             s.aterms.cview(), grid_sync.view(), sink_sync);
  pipelined->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
                  s.aterms.cview(), grid_async.view(), sink_async);
  Array3D<Visibility> vis_sync(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                               s.ds.nr_channels());
  Array3D<Visibility> vis_async(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                s.ds.nr_channels());
  sync->degrid(s.plan, s.ds.uvw.cview(), grid_sync.cview(), s.aterms.cview(),
               vis_sync.view(), sink_sync);
  pipelined->degrid(s.plan, s.ds.uvw.cview(), grid_async.cview(),
                    s.aterms.cview(), vis_async.view(), sink_async);

  const auto a = sink_sync.snapshot();
  const auto b = sink_async.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [stage_name, ma] : a) {
    ASSERT_TRUE(b.count(stage_name)) << stage_name;
    const auto& mb = b.at(stage_name);
    // Analytic counters derive from the plan alone: bit-for-bit identical
    // regardless of execution strategy.
    EXPECT_EQ(ma.ops.fma, mb.ops.fma) << stage_name;
    EXPECT_EQ(ma.ops.mul, mb.ops.mul) << stage_name;
    EXPECT_EQ(ma.ops.add, mb.ops.add) << stage_name;
    EXPECT_EQ(ma.ops.sincos, mb.ops.sincos) << stage_name;
    EXPECT_EQ(ma.ops.dev_bytes, mb.ops.dev_bytes) << stage_name;
    EXPECT_EQ(ma.ops.shared_bytes, mb.ops.shared_bytes) << stage_name;
    EXPECT_EQ(ma.ops.visibilities, mb.ops.visibilities) << stage_name;
    EXPECT_EQ(ma.invocations, mb.invocations) << stage_name;
  }

  // And so are the gridded pixels (same kernels, same accumulation order).
  for (std::size_t i = 0; i < grid_sync.size(); ++i) {
    ASSERT_EQ(grid_sync.data()[i], grid_async.data()[i]) << "pixel " << i;
  }
}

TEST(BackendTest, PipelinedThreadsAccumulateIntoOneSink) {
  auto s = Setup::make();
  auto pipelined = make_backend("pipelined", s.params);
  Array3D<cfloat> grid(4, s.params.grid_size, s.params.grid_size);
  obs::AggregateSink sink;
  pipelined->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
                  s.aterms.cview(), grid.view(), sink);
  const auto snapshot = sink.snapshot();
  // Each of the three stages ran once per work group, reported from its own
  // thread into the shared sink.
  const auto groups = s.plan.nr_work_groups();
  EXPECT_EQ(snapshot.at(stage::kGridder).invocations, groups);
  EXPECT_EQ(snapshot.at(stage::kSubgridFft).invocations, groups);
  EXPECT_EQ(snapshot.at(stage::kAdder).invocations, groups);
}

// --- Parameters::validated ------------------------------------------------------

TEST(ParametersTest, ValidConfigurationHasNoError) {
  Parameters params;
  params.image_size = 0.01;
  EXPECT_FALSE(params.validated().has_value());
  EXPECT_NO_THROW(params.validate());
}

TEST(ParametersTest, SubgridLargerThanGridIsDescriptive) {
  Parameters params;
  params.image_size = 0.01;
  params.grid_size = 64;
  params.subgrid_size = 128;
  auto error = params.validated();
  ASSERT_TRUE(error.has_value());
  const std::string what = error->what();
  EXPECT_NE(what.find("subgrid_size (128)"), std::string::npos);
  EXPECT_NE(what.find("grid_size (64)"), std::string::npos);
  EXPECT_THROW(params.validate(), Error);
}

TEST(ParametersTest, EveryInconsistencyIsCaught) {
  const auto error_of = [](auto&& mutate) {
    Parameters params;
    params.image_size = 0.01;
    mutate(params);
    return params.validated();
  };
  EXPECT_TRUE(error_of([](Parameters& p) { p.grid_size = 1; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.subgrid_size = 2; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.image_size = 0.0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.image_size = -1.0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.kernel_size = 0; }));
  EXPECT_TRUE(
      error_of([](Parameters& p) { p.kernel_size = p.subgrid_size; }));
  EXPECT_TRUE(
      error_of([](Parameters& p) { p.max_timesteps_per_subgrid = 0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.aterm_interval = -1; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.work_group_size = 0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.adder_tile_size = 0; }));
  EXPECT_TRUE(error_of([](Parameters& p) { p.adder_tile_size = 12; }));
}

TEST(ParametersTest, ProcessorRejectsBadParametersAtConstruction) {
  Parameters params;
  params.image_size = 0.01;
  params.subgrid_size = params.grid_size;  // inconsistent
  EXPECT_THROW(Processor{params}, Error);
  EXPECT_THROW(make_backend("pipelined", params), Error);
}

TEST(WPlaneModelTest, RejectsNonPositiveSpacing) {
  EXPECT_THROW(WPlaneModel(8, 0.0), Error);  // nr_planes > 1 needs w_max > 0
  EXPECT_THROW(WPlaneModel(0, 100.0), Error);
  EXPECT_NO_THROW(WPlaneModel(1, 0.0));
  EXPECT_NO_THROW(WPlaneModel(8, 100.0));
}

TEST(PlanTest, RejectsZeroChannelsDescriptively) {
  auto s = Setup::make();
  EXPECT_THROW(Plan(s.params, s.ds.uvw, {}, s.ds.baselines), Error);
}

}  // namespace
