// The canonical snapshot pinned by tests/golden/metrics.{json,csv}.
//
// Shared between test_obs.cpp (which compares the serializers' output to
// the checked-in goldens byte-for-byte) and regen_goldens.cpp (the
// `make regen-goldens` tool that rewrites them after an intentional schema
// change). Keeping the fixture in one header guarantees the regenerated
// files pin exactly what the test checks.
#pragma once

#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace idg::testgolden {

/// Deterministic fixture: one bulk-recorded stage (no latency samples) and
/// one single-span stage (exactly one histogram sample), so the goldens
/// pin both shapes of the idg-obs/v8 latency block, plus non-zero
/// data-quality counters on both stages (the v4 addition), non-zero
/// recovery counters (the v5 addition — the resilient supervisor's
/// record_recovery channel), non-zero shard coordination counters (the
/// v7 addition — the multi-process coordinator's record_shard channel)
/// and non-zero multi-tenant server counters (the v8 addition — the
/// idg-server daemon's record_server channel, omitted-when-empty like the
/// v6 hw block, which the fixture deliberately never records).
inline obs::MetricsSnapshot golden_snapshot() {
  obs::AggregateSink sink;
  sink.record("gridder", 1.5, 3);
  sink.record("adder", 0.25);
  sink.record_bytes("adder", 786432);
  sink.record_data_quality("gridder", 7, 0);
  sink.record_data_quality("adder", 0, 128);
  sink.record_recovery("supervisor", 2, 1, 1);
  obs::ShardCounters shard;
  shard.workers_spawned = 4;
  shard.workers_respawned = 1;
  shard.shards_dispatched = 9;
  shard.shards_rebalanced = 2;
  shard.shards_quarantined = 1;
  shard.merge_seconds = 0.125;
  sink.record_shard("shard", shard);
  obs::ServerCounters server;
  server.jobs_admitted = 6;
  server.jobs_rejected = 3;
  server.queue_full_rejections = 1;
  server.quota_rejections = 2;
  server.jobs_completed = 3;
  server.jobs_failed = 1;
  server.jobs_cancelled = 1;
  server.jobs_checkpointed = 1;
  server.queue_depth_peak = 4;
  server.drain_timeouts = 1;
  server.drained = 1;
  sink.record_server("server", server);
  OpCounts ops;
  ops.fma = 17;
  ops.mul = 8;
  ops.add = 4;
  ops.sincos = 1;
  ops.dev_bytes = 1024;
  ops.shared_bytes = 2048;
  ops.visibilities = 42;
  sink.record_ops("gridder", ops);
  return sink.snapshot();
}

}  // namespace idg::testgolden
