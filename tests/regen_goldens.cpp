// Regenerates tests/golden/metrics.{json,csv} from the shared fixture
// (golden_snapshot.hpp) after an INTENTIONAL schema change.
//
//   cmake --build build --target regen-goldens
//
// then review the diff: every byte that changed is a schema change that
// downstream consumers of the idg-obs JSON/CSV will see.
#include <iostream>
#include <string>

#include "golden_snapshot.hpp"
#include "obs/export.hpp"
#include "obs/perfcounters.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: regen_goldens <golden-dir>\n";
    return 2;
  }
  const std::string dir = argv[1];
  // The goldens pin the counter-free export: the "hw" block is omitted
  // when no PerfCounterSession recorded, so force the session off to keep
  // regeneration deterministic on any host (DESIGN.md §15).
  idg::obs::set_global_perf_session(nullptr);
  const auto snapshot = idg::testgolden::golden_snapshot();
  idg::obs::write_json_file(dir + "/metrics.json", snapshot);
  idg::obs::write_csv_file(dir + "/metrics.csv", snapshot);
  std::cout << "regenerated " << dir << "/metrics.{json,csv}\n";
  return 0;
}
