// Tests for the telescope simulator substrate: layouts, uvw geometry,
// sky models, A-term screens, and the direct (ground-truth) predictor.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <cmath>
#include <complex>
#include <numbers>

#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/dataset_io.hpp"
#include "sim/layout.hpp"
#include "sim/observation.hpp"
#include "sim/predict.hpp"
#include "sim/skymodel.hpp"

namespace {

using namespace idg;
using namespace idg::sim;

// --- layouts ----------------------------------------------------------------

TEST(LayoutTest, Ska1LowHasRequestedStationCount) {
  for (int n : {2, 10, 150}) {
    EXPECT_EQ(make_ska1_low_layout(n).size(), static_cast<std::size_t>(n));
  }
}

TEST(LayoutTest, Ska1LowCoreFractionIsDense) {
  auto layout = make_ska1_low_layout(200, 500.0, 40e3, 0.5);
  int within_core = 0;
  for (const auto& s : layout) {
    if (std::hypot(s.east, s.north) <= 500.0 * 1.01) ++within_core;
  }
  // Half the stations should sit inside the core radius.
  EXPECT_NEAR(within_core, 100, 2);
}

TEST(LayoutTest, Ska1LowReachesMaxRadius) {
  auto layout = make_ska1_low_layout(150, 500.0, 40e3);
  double max_r = 0.0;
  for (const auto& s : layout) max_r = std::max(max_r, std::hypot(s.east, s.north));
  EXPECT_GT(max_r, 30e3);   // spiral arms reach out
  EXPECT_LT(max_r, 50e3);   // ... but not beyond max_radius + jitter
}

TEST(LayoutTest, DeterministicForFixedSeed) {
  auto a = make_ska1_low_layout(50, 500.0, 40e3, 0.5, 7);
  auto b = make_ska1_low_layout(50, 500.0, 40e3, 0.5, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].east, b[i].east);
    EXPECT_EQ(a[i].north, b[i].north);
  }
}

TEST(LayoutTest, RandomLayoutWithinDisc) {
  auto layout = make_random_layout(100, 1000.0, 3);
  for (const auto& s : layout) EXPECT_LE(std::hypot(s.east, s.north), 1000.0);
}

TEST(LayoutTest, LofarLikeHasSuperterp) {
  auto layout = make_lofar_like_layout(40);
  EXPECT_EQ(layout.size(), 40u);
  int close = 0;
  for (const auto& s : layout)
    if (std::hypot(s.east, s.north) < 200.0) ++close;
  EXPECT_GE(close, 6);
}

TEST(LayoutTest, MaxBaselineLengthMatchesBruteForce) {
  StationLayout layout = {{0, 0}, {3, 4}, {-3, -4}};
  EXPECT_DOUBLE_EQ(max_baseline_length(layout), 10.0);
}

TEST(LayoutTest, InvalidArgumentsThrow) {
  EXPECT_THROW(make_ska1_low_layout(1), Error);
  EXPECT_THROW(make_ska1_low_layout(10, -5.0), Error);
  EXPECT_THROW(make_random_layout(10, 0.0), Error);
}

// --- baselines & uvw ----------------------------------------------------------

TEST(ObservationTest, BaselineCountIsNChoose2) {
  for (int n : {2, 3, 10, 150}) {
    auto bl = make_baselines(n);
    EXPECT_EQ(bl.size(), static_cast<std::size_t>(n) * (n - 1) / 2);
  }
}

TEST(ObservationTest, BaselinesAreOrderedPairs) {
  auto bl = make_baselines(5);
  for (const auto& b : bl) EXPECT_LT(b.station1, b.station2);
}

TEST(ObservationTest, UvwAntisymmetricUnderStationSwap) {
  auto layout = make_ska1_low_layout(4);
  Observation obs;
  obs.nr_timesteps = 3;
  std::vector<Baseline> fwd = {{0, 1}};
  std::vector<Baseline> rev = {{1, 0}};
  auto uvw_f = compute_uvw(layout, fwd, obs);
  auto uvw_r = compute_uvw(layout, rev, obs);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_FLOAT_EQ(uvw_f(0, t).u, -uvw_r(0, t).u);
    EXPECT_FLOAT_EQ(uvw_f(0, t).v, -uvw_r(0, t).v);
    EXPECT_FLOAT_EQ(uvw_f(0, t).w, -uvw_r(0, t).w);
  }
}

TEST(ObservationTest, UvwMagnitudeBoundedByBaselineLength) {
  auto layout = make_ska1_low_layout(10);
  Observation obs;
  obs.nr_timesteps = 16;
  auto baselines = make_baselines(10);
  auto uvw = compute_uvw(layout, baselines, obs);
  for (std::size_t b = 0; b < baselines.size(); ++b) {
    const auto& s1 = layout[static_cast<std::size_t>(baselines[b].station1)];
    const auto& s2 = layout[static_cast<std::size_t>(baselines[b].station2)];
    const double len = std::hypot(s1.east - s2.east, s1.north - s2.north);
    for (std::size_t t = 0; t < 16; ++t) {
      const UVW& c = uvw(b, t);
      const double mag = std::sqrt(static_cast<double>(c.u) * c.u +
                                   static_cast<double>(c.v) * c.v +
                                   static_cast<double>(c.w) * c.w);
      EXPECT_LE(mag, len * 1.0001) << "b=" << b << " t=" << t;
    }
  }
}

TEST(ObservationTest, UvwTracesArcOverTime) {
  // Over an hour, the uv point must move (earth rotation).
  auto layout = make_ska1_low_layout(3);
  Observation obs;
  obs.nr_timesteps = 2;
  obs.integration_time_s = 3600.0;
  auto baselines = make_baselines(3);
  auto uvw = compute_uvw(layout, baselines, obs);
  const UVW d = uvw(0, 1) - uvw(0, 0);
  EXPECT_GT(std::abs(d.u) + std::abs(d.v), 1.0);
}

TEST(ObservationTest, HourAngleAdvancesAtSiderealRate) {
  Observation obs;
  obs.integration_time_s = 86164.1;  // one sidereal day
  EXPECT_NEAR(obs.hour_angle(1) - obs.hour_angle(0), 2.0 * std::numbers::pi,
              1e-9);
}

TEST(ObservationTest, FitImageSizeContainsAllUv) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 12;
  cfg.nr_timesteps = 32;
  auto ds = make_benchmark_dataset_no_vis(cfg);
  // Every uv point, at the highest frequency, must map inside the grid.
  const double du = 1.0 / ds.image_size;  // cell size in wavelengths
  const double half_extent = 0.5 * static_cast<double>(ds.grid_size) * du;
  const double lambda_min = ds.obs.min_wavelength();
  for (std::size_t b = 0; b < ds.nr_baselines(); ++b) {
    for (std::size_t t = 0; t < ds.nr_timesteps(); ++t) {
      const UVW& c = ds.uvw(b, t);
      EXPECT_LT(std::abs(c.u) / lambda_min, half_extent);
      EXPECT_LT(std::abs(c.v) / lambda_min, half_extent);
    }
  }
}

// --- sky model ----------------------------------------------------------------

TEST(SkyModelTest, BrightnessMatrixFromStokes) {
  PointSource s;
  s.stokes_i = 2.0f;
  s.stokes_q = 0.5f;
  s.stokes_u = 0.25f;
  s.stokes_v = 0.125f;
  auto b = s.brightness();
  EXPECT_FLOAT_EQ(b.xx.real(), 2.5f);
  EXPECT_FLOAT_EQ(b.yy.real(), 1.5f);
  EXPECT_FLOAT_EQ(b.xy.real(), 0.25f);
  EXPECT_FLOAT_EQ(b.xy.imag(), 0.125f);
  EXPECT_FLOAT_EQ(b.yx.imag(), -0.125f);
}

TEST(SkyModelTest, UnpolarizedSourceIsDiagonal) {
  PointSource s;
  s.stokes_i = 1.0f;
  auto b = s.brightness();
  EXPECT_EQ(b.xy, cfloat{});
  EXPECT_EQ(b.yx, cfloat{});
  EXPECT_EQ(b.xx, b.yy);
}

TEST(SkyModelTest, RandomSkyIsWithinFov) {
  const double image_size = 0.02;
  auto sky = make_random_sky(50, image_size, 0.6);
  EXPECT_EQ(sky.size(), 50u);
  for (const auto& s : sky) {
    EXPECT_LE(std::abs(s.l), 0.3 * image_size);
    EXPECT_LE(std::abs(s.m), 0.3 * image_size);
    EXPECT_GE(s.stokes_i, 0.1f);
    EXPECT_LE(s.stokes_i, 1.0f);
  }
}

TEST(SkyModelTest, RenderPlacesSourceAtCorrectPixel) {
  SkyModel sky;
  PointSource s;
  s.l = 0.0f;
  s.m = 0.0f;
  s.stokes_i = 3.0f;
  sky.push_back(s);
  auto image = render_sky_image(sky, 64, 0.02);
  EXPECT_FLOAT_EQ(image(0, 32, 32).real(), 3.0f);  // XX at center
  EXPECT_FLOAT_EQ(image(3, 32, 32).real(), 3.0f);  // YY at center
  EXPECT_EQ(image(1, 32, 32), cfloat{});           // XY zero
}

TEST(SkyModelTest, RenderSkipsOutOfFovSources) {
  SkyModel sky;
  PointSource s;
  s.l = 1.0f;  // far outside a 0.02 rad field
  sky.push_back(s);
  auto image = render_sky_image(sky, 32, 0.02);
  double total = 0.0;
  for (auto v : image) total += std::abs(v);
  EXPECT_EQ(total, 0.0);
}

// --- A-terms -------------------------------------------------------------------

TEST(ATermTest, IdentityCubeIsIdentityEverywhere) {
  auto cube = make_identity_aterms(2, 3, 8);
  EXPECT_EQ(cube.dims(), (std::array<std::size_t, 4>{2, 3, 8, 8}));
  for (std::size_t i = 0; i < cube.size(); ++i) {
    EXPECT_EQ(cube.data()[i].xx, cfloat(1.0f, 0.0f));
    EXPECT_EQ(cube.data()[i].xy, cfloat{});
  }
}

TEST(ATermTest, PhaseScreenIsUnitary) {
  auto cube = make_phase_screen_aterms(2, 3, 16, 0.02, 1.0, 5);
  for (std::size_t i = 0; i < cube.size(); ++i) {
    const Jones& j = cube.data()[i];
    EXPECT_NEAR(std::abs(j.xx), 1.0f, 1e-5f);
    EXPECT_EQ(j.xy, cfloat{});
    EXPECT_EQ(j.xx, j.yy);
  }
}

TEST(ATermTest, GaussianBeamPeaksAtCenter) {
  auto cube = make_gaussian_beam_aterms(1, 1, 32, 0.02, 0.01);
  float center = std::abs(cube(0, 0, 16, 16).xx);
  float edge = std::abs(cube(0, 0, 0, 0).xx);
  EXPECT_NEAR(center, 1.0f, 1e-5f);
  EXPECT_LT(edge, center);
}

TEST(ATermTest, SampleAtermReadsCenterPixel) {
  auto cube = make_gaussian_beam_aterms(1, 2, 32, 0.02, 0.01);
  Jones j = sample_aterm(cube, 0, 1, 0.0f, 0.0f, 0.02);
  EXPECT_NEAR(std::abs(j.xx), 1.0f, 1e-5f);
}

// --- direct predictor ------------------------------------------------------------

TEST(PredictTest, SourceAtPhaseCenterGivesConstantVisibility) {
  auto layout = make_ska1_low_layout(4);
  Observation obs;
  obs.nr_timesteps = 4;
  obs.nr_channels = 2;
  auto baselines = make_baselines(4);
  auto uvw = compute_uvw(layout, baselines, obs);

  SkyModel sky = {PointSource{0.0f, 0.0f, 2.5f}};
  auto vis = predict_visibilities(sky, uvw, baselines, obs);
  for (std::size_t b = 0; b < baselines.size(); ++b)
    for (std::size_t t = 0; t < 4; ++t)
      for (std::size_t c = 0; c < 2; ++c) {
        EXPECT_NEAR(vis(b, t, c).xx.real(), 2.5f, 1e-4f);
        EXPECT_NEAR(vis(b, t, c).xx.imag(), 0.0f, 1e-4f);
      }
}

TEST(PredictTest, ConjugateSymmetryForRealSky) {
  // Swapping the stations of a baseline conjugates the visibility (for an
  // unpolarized real sky the matrix is Hermitian: V(-uvw) = V(uvw)^H).
  auto layout = make_ska1_low_layout(3);
  Observation obs;
  obs.nr_timesteps = 2;
  obs.nr_channels = 1;
  std::vector<Baseline> fwd = {{0, 2}};
  std::vector<Baseline> rev = {{2, 0}};
  auto uvw_f = compute_uvw(layout, fwd, obs);
  auto uvw_r = compute_uvw(layout, rev, obs);

  SkyModel sky = {PointSource{0.001f, -0.0005f, 1.5f}};
  auto vis_f = predict_visibilities(sky, uvw_f, fwd, obs);
  auto vis_r = predict_visibilities(sky, uvw_r, rev, obs);
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_NEAR(vis_f(0, t, 0).xx.real(), vis_r(0, t, 0).xx.real(), 1e-3f);
    EXPECT_NEAR(vis_f(0, t, 0).xx.imag(), -vis_r(0, t, 0).xx.imag(), 1e-3f);
  }
}

TEST(PredictTest, TwoSourcesSuperpose) {
  auto layout = make_ska1_low_layout(3);
  Observation obs;
  obs.nr_timesteps = 2;
  obs.nr_channels = 2;
  auto baselines = make_baselines(3);
  auto uvw = compute_uvw(layout, baselines, obs);

  SkyModel s1 = {PointSource{0.001f, 0.0f, 1.0f}};
  SkyModel s2 = {PointSource{-0.002f, 0.001f, 0.5f}};
  SkyModel both = {s1[0], s2[0]};
  auto v1 = predict_visibilities(s1, uvw, baselines, obs);
  auto v2 = predict_visibilities(s2, uvw, baselines, obs);
  auto vb = predict_visibilities(both, uvw, baselines, obs);
  for (std::size_t i = 0; i < vb.size(); ++i) {
    for (int p = 0; p < kNrPolarizations; ++p) {
      EXPECT_NEAR(std::abs(vb.data()[i][p] -
                           (v1.data()[i][p] + v2.data()[i][p])),
                  0.0f, 2e-4f);
    }
  }
}

TEST(PredictTest, IdentityATermsDoNotChangeVisibilities) {
  auto layout = make_ska1_low_layout(3);
  Observation obs;
  obs.nr_timesteps = 4;
  obs.nr_channels = 2;
  auto baselines = make_baselines(3);
  auto uvw = compute_uvw(layout, baselines, obs);
  SkyModel sky = {PointSource{0.001f, 0.0005f, 1.0f}};

  auto plain = predict_visibilities(sky, uvw, baselines, obs);
  auto cube = make_identity_aterms(2, 3, 16);
  ATermContext ctx{&cube, 2, 0.02};
  auto with = predict_visibilities(sky, uvw, baselines, obs, ctx);
  EXPECT_LT(max_abs_difference(plain, with), 1e-6);
}

TEST(PredictTest, PhaseScreenChangesVisibilities) {
  auto layout = make_ska1_low_layout(3);
  Observation obs;
  obs.nr_timesteps = 4;
  obs.nr_channels = 2;
  auto baselines = make_baselines(3);
  auto uvw = compute_uvw(layout, baselines, obs);
  SkyModel sky = {PointSource{0.002f, 0.0f, 1.0f}};

  auto plain = predict_visibilities(sky, uvw, baselines, obs);
  auto cube = make_phase_screen_aterms(2, 3, 16, 0.02, 1.5, 11);
  ATermContext ctx{&cube, 2, 0.02};
  auto with = predict_visibilities(sky, uvw, baselines, obs, ctx);
  EXPECT_GT(max_abs_difference(plain, with), 1e-3);
  // Unitary screens preserve amplitude for a single source.
  EXPECT_NEAR(rms_amplitude(plain), rms_amplitude(with), 1e-4);
}

// --- dataset ---------------------------------------------------------------------

TEST(DatasetTest, DimensionsMatchConfig) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 8;
  cfg.nr_timesteps = 16;
  cfg.nr_channels = 4;
  auto ds = make_benchmark_dataset(cfg);
  EXPECT_EQ(ds.nr_baselines(), 28u);
  EXPECT_EQ(ds.nr_timesteps(), 16u);
  EXPECT_EQ(ds.nr_channels(), 4u);
  EXPECT_EQ(ds.nr_visibilities(), 28u * 16 * 4);
  EXPECT_EQ(ds.visibilities.size(), ds.nr_baselines() * 16 * 4);
  EXPECT_GT(ds.image_size, 0.0);
}

TEST(DatasetTest, FrequenciesAreAscending) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  auto ds = make_benchmark_dataset_no_vis(cfg);
  for (std::size_t c = 1; c < ds.nr_channels(); ++c)
    EXPECT_GT(ds.frequencies[c], ds.frequencies[c - 1]);
}

TEST(DatasetTest, NoVisVariantIsZeroFilled) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  cfg.nr_timesteps = 8;
  auto ds = make_benchmark_dataset_no_vis(cfg);
  for (const auto& v : ds.visibilities) EXPECT_EQ(v.norm2(), 0.0f);
}

TEST(DatasetTest, PaperConfigMatchesPublication) {
  auto cfg = BenchmarkConfig::paper();
  EXPECT_EQ(cfg.nr_stations, 150);
  EXPECT_EQ(cfg.nr_timesteps, 8192);
  EXPECT_EQ(cfg.nr_channels, 16);
  EXPECT_EQ(cfg.grid_size, 2048u);
  EXPECT_EQ(cfg.subgrid_size, 24u);
  EXPECT_EQ(cfg.aterm_interval, 256);
  // 150 stations -> 11175 baselines, as stated in §VI-A.
  EXPECT_EQ(make_baselines(cfg.nr_stations).size(), 11175u);
}

TEST(DatasetTest, InvalidConfigThrows) {
  BenchmarkConfig cfg;
  cfg.grid_size = 16;
  cfg.subgrid_size = 24;
  EXPECT_THROW(make_benchmark_dataset(cfg), Error);
}

// --- dataset serialization -------------------------------------------------------

TEST(DatasetIoTest, SaveLoadRoundtripIsExact) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 6;
  cfg.nr_timesteps = 16;
  cfg.nr_channels = 4;
  auto ds = make_benchmark_dataset(cfg);

  const std::string path = "/tmp/idg_test_dataset.bin";
  save_dataset(path, ds);
  auto back = load_dataset(path);
  std::remove(path.c_str());

  EXPECT_EQ(back.layout.size(), ds.layout.size());
  EXPECT_EQ(back.baselines.size(), ds.baselines.size());
  EXPECT_EQ(back.nr_timesteps(), ds.nr_timesteps());
  EXPECT_EQ(back.nr_channels(), ds.nr_channels());
  EXPECT_EQ(back.grid_size, ds.grid_size);
  EXPECT_DOUBLE_EQ(back.image_size, ds.image_size);
  EXPECT_DOUBLE_EQ(back.obs.start_frequency_hz, ds.obs.start_frequency_hz);
  for (std::size_t s = 0; s < ds.layout.size(); ++s) {
    EXPECT_DOUBLE_EQ(back.layout[s].east, ds.layout[s].east);
    EXPECT_DOUBLE_EQ(back.layout[s].north, ds.layout[s].north);
  }
  for (std::size_t b = 0; b < ds.baselines.size(); ++b) {
    EXPECT_EQ(back.baselines[b], ds.baselines[b]);
  }
  for (std::size_t i = 0; i < ds.uvw.size(); ++i) {
    EXPECT_EQ(back.uvw.data()[i], ds.uvw.data()[i]);
  }
  for (std::size_t i = 0; i < ds.visibilities.size(); ++i) {
    for (int p = 0; p < kNrPolarizations; ++p) {
      EXPECT_EQ(back.visibilities.data()[i][p], ds.visibilities.data()[i][p]);
    }
  }
}

TEST(DatasetIoTest, RejectsWrongMagic) {
  const std::string path = "/tmp/idg_test_notadataset.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTMAGIC and then some garbage bytes";
  }
  EXPECT_THROW(load_dataset(path), Error);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsTruncatedFile) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  cfg.nr_timesteps = 8;
  auto ds = make_benchmark_dataset(cfg);
  const std::string path = "/tmp/idg_test_trunc.bin";
  save_dataset(path, ds);
  // Truncate to half.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(load_dataset(path), Error);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/nope.bin"), Error);
}


// --- corrupted / hostile dataset files (PR 4 hardening) ---------------------

namespace {
// Writes a syntactically valid v1 header with the given counts, then
// `payload_bytes` of zeros. Used to forge corrupted fixtures.
void write_forged_header(const std::string& path, std::uint64_t stations,
                         std::uint64_t baselines, std::uint64_t timesteps,
                         std::uint64_t channels, std::uint64_t grid,
                         std::size_t payload_bytes = 0) {
  std::ofstream out(path, std::ios::binary);
  out.write("IDGDATA1", 8);
  const std::uint64_t header[5] = {stations, baselines, timesteps, channels,
                                   grid};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  const double obs[7] = {0.01, -0.5, 0.9, 0.0, 1.0, 100e6, 1e6};
  out.write(reinterpret_cast<const char*>(obs), sizeof(obs));
  const std::vector<char> zeros(payload_bytes, 0);
  out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
}
}  // namespace

TEST(DatasetIoTest, RejectsOversizedHeaderCountsWithoutAllocating) {
  // A hostile header claiming ~10^15 visibilities must fail with a
  // descriptive idg::Error (sanity cap), not std::bad_alloc.
  const std::string path = "/tmp/idg_test_oversized.bin";
  write_forged_header(path, 60000, 1000000000ull, 1000000, 100, 1024);
  try {
    load_dataset(path);
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("sanity cap"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsDimensionOverflow) {
  // Counts whose product wraps uint64 must be caught by the checked
  // multiply (each factor is under its individual cap).
  const std::string path = "/tmp/idg_test_overflow.bin";
  write_forged_header(path, 60000, 1ull << 30, 1ull << 24, 1ull << 16, 1024);
  EXPECT_THROW(load_dataset(path), Error);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsTrailingGarbage) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  cfg.nr_timesteps = 8;
  auto ds = make_benchmark_dataset(cfg);
  const std::string path = "/tmp/idg_test_trailing.bin";
  save_dataset(path, ds);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra bytes the header does not account for";
  }
  try {
    load_dataset(path);
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsBaselineCountAboveStationPairs) {
  const std::string path = "/tmp/idg_test_badbl.bin";
  write_forged_header(path, 4, 100, 8, 2, 64);
  EXPECT_THROW(load_dataset(path), Error);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, TruncationErrorNamesTheSection) {
  // Truncating inside the uvw block must say so, not just "bad file".
  BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  cfg.nr_timesteps = 8;
  auto ds = make_benchmark_dataset(cfg);
  const std::string path = "/tmp/idg_test_trunc_section.bin";
  save_dataset(path, ds);
  const std::size_t header_bytes =
      8 + 5 * 8 + 7 * 8 + ds.layout.size() * 16 + ds.baselines.size() * 8;
  std::filesystem::resize_file(path, header_bytes + 4);
  try {
    load_dataset(path);
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("uvw"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, FlagMaskRoundtripsThroughV2) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 5;
  cfg.nr_timesteps = 12;
  cfg.nr_channels = 3;
  auto ds = make_benchmark_dataset(cfg);
  const std::uint64_t flagged = apply_rfi_flags(ds, 0.25, 7);
  EXPECT_GT(flagged, 0u);
  EXPECT_LT(flagged, ds.nr_visibilities());

  const std::string path = "/tmp/idg_test_flags_v2.bin";
  save_dataset(path, ds);
  {
    std::ifstream in(path, std::ios::binary);
    char magic[8];
    in.read(magic, 8);
    EXPECT_EQ(std::string(magic, 8), "IDGDATA2");
  }
  auto back = load_dataset(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.flags.size(), ds.flags.size());
  for (std::size_t i = 0; i < ds.flags.size(); ++i) {
    EXPECT_EQ(back.flags.data()[i], ds.flags.data()[i]);
  }
}

TEST(DatasetIoTest, FlagFreeDatasetStillWritesV1) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  cfg.nr_timesteps = 4;
  auto ds = make_benchmark_dataset(cfg);
  const std::string path = "/tmp/idg_test_v1.bin";
  save_dataset(path, ds);
  std::ifstream in(path, std::ios::binary);
  char magic[8];
  in.read(magic, 8);
  EXPECT_EQ(std::string(magic, 8), "IDGDATA1");
  in.close();
  auto back = load_dataset(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.flags.size(), 0u);
}

TEST(DatasetTest, ApplyRfiFlagsIsDeterministicAndSeedDependent) {
  BenchmarkConfig cfg;
  cfg.nr_stations = 5;
  cfg.nr_timesteps = 16;
  auto a = make_benchmark_dataset(cfg);
  auto b = make_benchmark_dataset(cfg);
  auto c = make_benchmark_dataset(cfg);
  EXPECT_EQ(apply_rfi_flags(a, 0.1, 3), apply_rfi_flags(b, 0.1, 3));
  for (std::size_t i = 0; i < a.flags.size(); ++i) {
    ASSERT_EQ(a.flags.data()[i], b.flags.data()[i]);
  }
  apply_rfi_flags(c, 0.1, 4);
  bool differs = false;
  for (std::size_t i = 0; i < a.flags.size(); ++i) {
    if (a.flags.data()[i] != c.flags.data()[i]) differs = true;
  }
  EXPECT_TRUE(differs);
  // fraction 0 allocates the (all-clear) mask but flags nothing.
  Dataset d = make_benchmark_dataset(cfg);
  EXPECT_EQ(apply_rfi_flags(d, 0.0, 1), 0u);
  EXPECT_EQ(d.flags.size(), d.nr_visibilities());
}

}  // namespace
