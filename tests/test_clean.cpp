// Tests for the CLEAN deconvolution substrate: minor-cycle behaviour and
// the full major-cycle imaging loop with IDG.
#include <gtest/gtest.h>

#include <cmath>

#include "clean/hogbom.hpp"
#include "clean/major_cycle.hpp"
#include "idg/image.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"

namespace {

using namespace idg;
using namespace idg::clean;

// Builds a synthetic [4][n][n] cube with given Stokes-I pixel values.
Array3D<cfloat> cube_with_peak(std::size_t n, std::size_t y, std::size_t x,
                               float flux) {
  Array3D<cfloat> cube(kNrPolarizations, n, n);
  cube(0, y, x) = {flux, 0.0f};
  cube(3, y, x) = {flux, 0.0f};
  return cube;
}

// A delta-function PSF (unit peak at centre, zero elsewhere).
Array3D<cfloat> delta_psf(std::size_t n) {
  return cube_with_peak(n, n / 2, n / 2, 1.0f);
}

TEST(HogbomTest, SingleDeltaCleansCompletely) {
  const std::size_t n = 32;
  auto residual = cube_with_peak(n, 10, 20, 2.0f);
  auto psf = delta_psf(n);
  Array3D<cfloat> model(kNrPolarizations, n, n);

  CleanConfig cfg;
  cfg.gain = 1.0f;  // full subtraction in one step with a delta PSF
  cfg.max_iterations = 5;
  auto result = hogbom_clean(residual.view(), psf.cview(), model.view(), cfg);

  EXPECT_EQ(result.iterations, 1);
  EXPECT_NEAR(result.final_peak, 0.0f, 1e-6f);
  EXPECT_NEAR(model(0, 10, 20).real(), 2.0f, 1e-6f);
  EXPECT_NEAR(stokes_i(residual.cview(), 10, 20), 0.0f, 1e-6f);
}

TEST(HogbomTest, GainControlsSubtractionRate) {
  const std::size_t n = 16;
  auto residual = cube_with_peak(n, 8, 8, 1.0f);
  auto psf = delta_psf(n);
  Array3D<cfloat> model(kNrPolarizations, n, n);

  CleanConfig cfg;
  cfg.gain = 0.5f;
  cfg.max_iterations = 1;
  hogbom_clean(residual.view(), psf.cview(), model.view(), cfg);
  EXPECT_NEAR(stokes_i(residual.cview(), 8, 8), 0.5f, 1e-6f);
  EXPECT_NEAR(model(0, 8, 8).real(), 0.5f, 1e-6f);
}

TEST(HogbomTest, ThresholdStopsIteration) {
  const std::size_t n = 16;
  auto residual = cube_with_peak(n, 4, 4, 0.1f);
  auto psf = delta_psf(n);
  Array3D<cfloat> model(kNrPolarizations, n, n);

  CleanConfig cfg;
  cfg.threshold = 0.5f;
  auto result = hogbom_clean(residual.view(), psf.cview(), model.view(), cfg);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_NEAR(result.final_peak, 0.1f, 1e-6f);
}

TEST(HogbomTest, TwoSourcesFoundInBrightnessOrder) {
  const std::size_t n = 32;
  auto residual = cube_with_peak(n, 5, 6, 1.0f);
  residual(0, 20, 25) = {3.0f, 0.0f};
  residual(3, 20, 25) = {3.0f, 0.0f};
  auto psf = delta_psf(n);
  Array3D<cfloat> model(kNrPolarizations, n, n);

  CleanConfig cfg;
  cfg.gain = 1.0f;
  cfg.max_iterations = 2;
  auto result = hogbom_clean(residual.view(), psf.cview(), model.view(), cfg);
  ASSERT_EQ(result.components.size(), 2u);
  EXPECT_EQ(result.components[0].y, 20u);
  EXPECT_EQ(result.components[0].x, 25u);
  EXPECT_EQ(result.components[1].y, 5u);
  EXPECT_EQ(result.components[1].x, 6u);
}

TEST(HogbomTest, NegativeArtifactsAreCleaned) {
  const std::size_t n = 16;
  auto residual = cube_with_peak(n, 3, 3, -2.0f);
  auto psf = delta_psf(n);
  Array3D<cfloat> model(kNrPolarizations, n, n);

  CleanConfig cfg;
  cfg.gain = 1.0f;
  cfg.max_iterations = 1;
  auto result = hogbom_clean(residual.view(), psf.cview(), model.view(), cfg);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_NEAR(model(0, 3, 3).real(), -2.0f, 1e-6f);
}

TEST(HogbomTest, InvalidGainThrows) {
  const std::size_t n = 8;
  auto residual = delta_psf(n);
  auto psf = delta_psf(n);
  Array3D<cfloat> model(kNrPolarizations, n, n);
  CleanConfig cfg;
  cfg.gain = 0.0f;
  EXPECT_THROW(
      hogbom_clean(residual.view(), psf.cview(), model.view(), cfg), Error);
}

// --- major cycle with IDG -------------------------------------------------------

struct CycleFixture {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;

  static CycleFixture make() {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 14;
    cfg.nr_timesteps = 64;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    cfg.subgrid_size = 32;
    auto ds = sim::make_benchmark_dataset_no_vis(cfg);

    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = cfg.nr_stations;
    params.kernel_size = 16;
    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                            cfg.subgrid_size);
    return {std::move(ds), params, std::move(plan), std::move(aterms)};
  }
};

TEST(MajorCycleTest, PsfPeaksAtUnityAtCenter) {
  auto f = CycleFixture::make();
  Processor proc(f.params);
  auto psf = make_psf(proc, f.plan, f.ds.uvw.cview(), f.aterms.cview());
  const std::size_t c = f.params.grid_size / 2;
  EXPECT_NEAR(psf(0, c, c).real(), 1.0f, 0.02f);
  // Off-centre PSF values are strictly smaller.
  EXPECT_LT(std::abs(psf(0, c + 30, c + 40)), 0.9f);
}

TEST(MajorCycleTest, RecoversTwoPointSources) {
  auto f = CycleFixture::make();
  const double dl =
      f.params.image_size / static_cast<double>(f.params.grid_size);
  sim::SkyModel sky = {
      sim::PointSource{static_cast<float>(22 * dl), static_cast<float>(-11 * dl), 1.0f},
      sim::PointSource{static_cast<float>(-15 * dl), static_cast<float>(18 * dl), 0.6f},
  };
  auto vis =
      sim::predict_visibilities(sky, f.ds.uvw, f.ds.baselines, f.ds.obs);

  Processor proc(f.params);
  MajorCycleConfig cfg;
  cfg.nr_major_cycles = 3;
  cfg.minor.gain = 0.2f;
  cfg.minor.max_iterations = 100;
  auto result = run_major_cycles(proc, f.plan, f.ds.uvw.cview(), vis.cview(),
                                 f.aterms.cview(), cfg);

  // The model must contain flux concentrated at both source pixels.
  const std::size_t cx1 = f.params.grid_size / 2 + 22;
  const std::size_t cy1 = f.params.grid_size / 2 - 11;
  const std::size_t cx2 = f.params.grid_size / 2 - 15;
  const std::size_t cy2 = f.params.grid_size / 2 + 18;

  auto flux_around = [&](std::size_t cy, std::size_t cx) {
    float sum = 0.0f;
    for (std::size_t y = cy - 3; y <= cy + 3; ++y)
      for (std::size_t x = cx - 3; x <= cx + 3; ++x)
        sum += result.model_image(0, y, x).real();
    return sum;
  };
  EXPECT_NEAR(flux_around(cy1, cx1), 1.0f, 0.25f);
  EXPECT_NEAR(flux_around(cy2, cx2), 0.6f, 0.25f);

  // Total recovered flux matches the injected 1.6 Jy.
  float total = 0.0f;
  for (std::size_t y = 0; y < f.params.grid_size; ++y)
    for (std::size_t x = 0; x < f.params.grid_size; ++x)
      total += result.model_image(0, y, x).real();
  EXPECT_NEAR(total, 1.6f, 0.15f);

  // The model's brightest pixel is at the brightest source.
  float best = -1.0f;
  std::size_t by = 0, bx = 0;
  for (std::size_t y = 0; y < f.params.grid_size; ++y)
    for (std::size_t x = 0; x < f.params.grid_size; ++x)
      if (result.model_image(0, y, x).real() > best) {
        best = result.model_image(0, y, x).real();
        by = y;
        bx = x;
      }
  EXPECT_NEAR(static_cast<double>(by), static_cast<double>(cy1), 1.0);
  EXPECT_NEAR(static_cast<double>(bx), static_cast<double>(cx1), 1.0);

  // Residual peak must decrease across cycles.
  ASSERT_GE(result.peak_history.size(), 2u);
  EXPECT_LT(result.peak_history.back(), result.peak_history.front());
  EXPECT_LT(result.peak_history.back(), 0.05f);
  EXPECT_GT(result.total_components, 0);

  // Stage times must cover the full cycle (Fig 9's stages).
  EXPECT_GT(result.times.get(stage::kGridder), 0.0);
  EXPECT_GT(result.times.get(stage::kDegridder), 0.0);
  EXPECT_GT(result.times.get(stage::kGridFft), 0.0);
}

}  // namespace
