// Tests for the W-projection baseline: kernel construction, gridding and
// degridding accuracy against the direct predictor, and agreement with IDG.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "idg/image.hpp"
#include "idg/parameters.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"
#include "sim/skymodel.hpp"
#include "wproj/gridder.hpp"
#include "wproj/wkernel.hpp"

namespace {

using namespace idg;
using namespace idg::wproj;

WKernelConfig small_config(std::size_t support = 8) {
  WKernelConfig cfg;
  cfg.support = support;
  cfg.oversampling = 8;
  cfg.nr_w_planes = 9;
  cfg.w_max = 200.0;
  cfg.image_size = 0.02;
  return cfg;
}

// --- kernel construction -------------------------------------------------------

TEST(WKernelTest, ZeroWKernelIsRealAndPeaked) {
  auto cfg = small_config();
  cfg.nr_w_planes = 1;
  cfg.w_max = 0.0;
  WKernelSet set(cfg);
  const std::size_t os = set.oversampled_size();
  const cfloat center = set.plane(0)[os / 2 * os + os / 2];
  // FT of a real, even taper: real positive peak, tiny imaginary part.
  EXPECT_GT(center.real(), 0.0f);
  EXPECT_NEAR(center.imag() / center.real(), 0.0f, 1e-3f);
  // Peak must be the maximum.
  float max_abs = 0.0f;
  for (std::size_t i = 0; i < os * os; ++i)
    max_abs = std::max(max_abs, std::abs(set.plane(0)[i]));
  EXPECT_NEAR(max_abs, std::abs(center), 1e-5f);
}

TEST(WKernelTest, KernelSumApproximatesTaperCenter) {
  // Sum over the *cell-spaced* kernel taps equals the image-domain screen at
  // the phase centre: taper(0) * exp(0) = 1 (IDG normalization convention).
  auto cfg = small_config(16);
  cfg.nr_w_planes = 1;
  cfg.w_max = 0.0;
  WKernelSet set(cfg);
  std::complex<double> sum{};
  const int half = static_cast<int>(cfg.support) / 2;
  for (int dv = -half; dv < half; ++dv)
    for (int du = -half; du < half; ++du)
      sum += std::complex<double>(set.at(0, dv, 0, du, 0));
  EXPECT_NEAR(sum.real(), 1.0, 0.02);
  EXPECT_NEAR(sum.imag(), 0.0, 0.01);
}

TEST(WKernelTest, LargerWMeansWiderKernel) {
  auto cfg = small_config(16);
  cfg.nr_w_planes = 3;
  cfg.w_max = 3000.0;
  WKernelSet set(cfg);
  // Energy fraction outside the central 3x3 cells grows with |w|.
  auto spread = [&](int plane) {
    double inner = 0.0, total = 0.0;
    const int half = static_cast<int>(cfg.support) / 2;
    for (int dv = -half; dv < half; ++dv) {
      for (int du = -half; du < half; ++du) {
        const double a = std::abs(std::complex<double>(
            set.at(plane, dv, 0, du, 0)));
        total += a * a;
        if (std::abs(dv) <= 1 && std::abs(du) <= 1) inner += a * a;
      }
    }
    return 1.0 - inner / total;
  };
  EXPECT_GT(spread(0), spread(1));  // plane 0: w = -w_max; plane 1: w = 0
  EXPECT_GT(spread(2), spread(1));
}

TEST(WKernelTest, PlaneLookupClampsAndCenters) {
  auto cfg = small_config();
  WKernelSet set(cfg);
  EXPECT_EQ(set.plane_of(0.0), 4);         // centre of 9 planes
  EXPECT_EQ(set.plane_of(-1e9), 0);        // clamped
  EXPECT_EQ(set.plane_of(1e9), 8);
  EXPECT_EQ(set.plane_of(-cfg.w_max), 0);
  EXPECT_EQ(set.plane_of(cfg.w_max), 8);
}

TEST(WKernelTest, StorageGrowsQuadraticallyWithSupport) {
  auto a = small_config(8);
  auto b = small_config(16);
  a.nr_w_planes = b.nr_w_planes = 2;
  WKernelSet sa(a), sb(b);
  EXPECT_GT(sb.storage_bytes(), 3 * sa.storage_bytes());
  EXPECT_GT(sa.construction_seconds(), 0.0);
}

TEST(WKernelTest, InvalidConfigThrows) {
  auto cfg = small_config();
  cfg.support = 7;  // odd
  EXPECT_THROW(WKernelSet{cfg}, Error);
  cfg = small_config();
  cfg.image_size = 0.0;
  EXPECT_THROW(WKernelSet{cfg}, Error);
}

// --- end-to-end accuracy --------------------------------------------------------

struct WprojFixture {
  sim::Dataset ds;
  WprojParameters params;

  static WprojFixture make(std::size_t support) {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 6;
    cfg.nr_timesteps = 32;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    auto ds = sim::make_benchmark_dataset_no_vis(cfg);

    // Max |w| in wavelengths over the dataset.
    double w_max = 0.0;
    for (const auto& c : ds.uvw)
      w_max = std::max(w_max, std::abs(static_cast<double>(c.w)));
    w_max /= ds.obs.min_wavelength();

    WprojParameters params;
    params.grid_size = cfg.grid_size;
    params.image_size = ds.image_size;
    params.kernel.support = support;
    params.kernel.oversampling = 8;
    params.kernel.nr_w_planes = 31;
    params.kernel.w_max = w_max * 1.01;
    return {std::move(ds), params};
  }
};

TEST(WprojAccuracyTest, DegriddingMatchesDirectPrediction) {
  auto f = WprojFixture::make(16);
  const double dl =
      f.params.image_size / static_cast<double>(f.params.grid_size);
  sim::SkyModel sky = {
      sim::PointSource{static_cast<float>(18 * dl), static_cast<float>(-9 * dl), 1.0f},
      sim::PointSource{0.0f, 0.0f, 0.5f},
  };
  auto expected =
      sim::predict_visibilities(sky, f.ds.uvw, f.ds.baselines, f.ds.obs);

  auto model =
      sim::render_sky_image(sky, f.params.grid_size, f.params.image_size);
  auto grid = model_image_to_grid(model);

  WprojGridder gridder(f.params);
  Array3D<Visibility> predicted(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                                f.ds.nr_channels());
  gridder.degrid_visibilities(f.ds.uvw.cview(), grid.cview(),
                              f.ds.frequencies, predicted.view());
  EXPECT_EQ(gridder.nr_skipped(), 0u);

  const double rms = sim::rms_amplitude(expected);
  EXPECT_LT(sim::max_abs_difference(expected, predicted), 0.05 * rms);
}

TEST(WprojAccuracyTest, GriddingRecoversPointSource) {
  auto f = WprojFixture::make(16);
  const double dl =
      f.params.image_size / static_cast<double>(f.params.grid_size);
  const int px = 20, py = 15;
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(px * dl),
                                        static_cast<float>(py * dl), 2.0f}};
  auto vis =
      sim::predict_visibilities(sky, f.ds.uvw, f.ds.baselines, f.ds.obs);

  WprojGridder gridder(f.params);
  Array3D<cfloat> grid(4, f.params.grid_size, f.params.grid_size);
  gridder.grid_visibilities(f.ds.uvw.cview(), vis.cview(), f.ds.frequencies,
                            grid.view());
  EXPECT_EQ(gridder.nr_skipped(), 0u);

  auto image = make_dirty_image(grid, f.ds.nr_visibilities());
  const std::size_t cx = f.params.grid_size / 2 + px;
  const std::size_t cy = f.params.grid_size / 2 + py;
  EXPECT_NEAR(image(0, cy, cx).real(), 2.0f, 0.1f);
}

TEST(WprojAccuracyTest, SmallSupportDegradesAccuracy) {
  // Shrinking N_W must monotonically hurt the prediction error — the
  // trade-off that makes Fig 16 interesting.
  auto run = [](std::size_t support) {
    auto f = WprojFixture::make(support);
    const double dl =
        f.params.image_size / static_cast<double>(f.params.grid_size);
    sim::SkyModel sky = {sim::PointSource{static_cast<float>(40 * dl),
                                          static_cast<float>(35 * dl), 1.0f}};
    auto expected =
        sim::predict_visibilities(sky, f.ds.uvw, f.ds.baselines, f.ds.obs);
    auto model =
        sim::render_sky_image(sky, f.params.grid_size, f.params.image_size);
    auto grid = model_image_to_grid(model);
    WprojGridder gridder(f.params);
    Array3D<Visibility> predicted(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                                  f.ds.nr_channels());
    gridder.degrid_visibilities(f.ds.uvw.cview(), grid.cview(),
                                f.ds.frequencies, predicted.view());
    return sim::max_abs_difference(expected, predicted);
  };
  const double err4 = run(4);
  const double err16 = run(16);
  EXPECT_GT(err4, 2.0 * err16);
}

// IDG and WPG must produce consistent grids: same normalization, same
// taper convention, comparable dirty images.
TEST(WprojVsIdgTest, DirtyImagesAgree) {
  auto f = WprojFixture::make(16);
  const double dl =
      f.params.image_size / static_cast<double>(f.params.grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(12 * dl),
                                        static_cast<float>(-7 * dl), 1.0f}};
  auto vis =
      sim::predict_visibilities(sky, f.ds.uvw, f.ds.baselines, f.ds.obs);

  // WPG image.
  WprojGridder wpg(f.params);
  Array3D<cfloat> grid_w(4, f.params.grid_size, f.params.grid_size);
  wpg.grid_visibilities(f.ds.uvw.cview(), vis.cview(), f.ds.frequencies,
                        grid_w.view());
  auto image_w = make_dirty_image(grid_w, f.ds.nr_visibilities());

  // IDG image of the same data.
  Parameters ip;
  ip.grid_size = f.params.grid_size;
  ip.subgrid_size = 32;
  ip.image_size = f.params.image_size;
  ip.nr_stations = 6;
  ip.kernel_size = 16;
  Plan plan(ip, f.ds.uvw, f.ds.frequencies, f.ds.baselines);
  auto aterms = sim::make_identity_aterms(1, 6, ip.subgrid_size);
  Processor proc(ip);
  Array3D<cfloat> grid_i(4, ip.grid_size, ip.grid_size);
  proc.grid_visibilities(plan, f.ds.uvw.cview(), vis.cview(), aterms.cview(),
                         grid_i.view());
  auto image_i = make_dirty_image(grid_i, plan.nr_planned_visibilities());

  const std::size_t cx = f.params.grid_size / 2 + 12;
  const std::size_t cy = f.params.grid_size / 2 - 7;
  EXPECT_NEAR(image_w(0, cy, cx).real(), image_i(0, cy, cx).real(), 0.05f);
  EXPECT_NEAR(image_w(0, cy, cx).real(), 1.0f, 0.08f);
}

TEST(WprojTest, OpCountsScaleWithSupportSquared) {
  auto f8 = WprojFixture::make(8);
  auto f16 = WprojFixture::make(16);
  WprojGridder g8(f8.params), g16(f16.params);
  const auto c8 = g8.op_counts(1000);
  const auto c16 = g16.op_counts(1000);
  EXPECT_NEAR(static_cast<double>(c16.fma) / c8.fma, 4.0, 0.01);
  // WPG intensity is low (bandwidth-hungry), far below IDG's.
  EXPECT_LT(c8.intensity_dev(), 1.0);
}

}  // namespace
