// Tests for the architecture models: Table I machines, classic and
// modified rooflines, the op-mix model, the power model and the full
// imaging-cycle model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "arch/attribution.hpp"
#include "arch/cyclemodel.hpp"
#include "arch/hostprobe.hpp"
#include "arch/machine.hpp"
#include "arch/opmix.hpp"
#include "arch/power.hpp"
#include "arch/roofline.hpp"
#include "idg/accounting.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "json_mini.hpp"
#include "obs/sink.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;
using namespace idg::arch;

// --- Table I ------------------------------------------------------------------

TEST(MachineTest, TableOneValuesMatchPaper) {
  const Machine h = haswell();
  EXPECT_DOUBLE_EQ(h.peak_tflops, 2.78);
  EXPECT_DOUBLE_EQ(h.mem_bw_gbs, 136.0);
  EXPECT_DOUBLE_EQ(h.tdp_w, 290.0);
  EXPECT_EQ(h.fpus, 448);

  const Machine f = fiji();
  EXPECT_DOUBLE_EQ(f.peak_tflops, 8.60);
  EXPECT_DOUBLE_EQ(f.mem_bw_gbs, 512.0);
  EXPECT_DOUBLE_EQ(f.tdp_w, 275.0);
  EXPECT_EQ(f.fpus, 4096);

  const Machine p = pascal();
  EXPECT_DOUBLE_EQ(p.peak_tflops, 9.22);
  EXPECT_DOUBLE_EQ(p.mem_bw_gbs, 320.0);
  EXPECT_DOUBLE_EQ(p.tdp_w, 180.0);
  EXPECT_EQ(p.fpus, 2560);
  EXPECT_EQ(p.sincos, SincosImplementation::DedicatedSfu);
}

TEST(MachineTest, PaperMachinesInPresentationOrder) {
  auto machines = paper_machines();
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0].name, "HASWELL");
  EXPECT_EQ(machines[1].name, "FIJI");
  EXPECT_EQ(machines[2].name, "PASCAL");
}

TEST(MachineTest, HostProbeGivesPlausibleCeilings) {
  const HostCapabilities& caps = probe_host();
  // Any machine that can build this repo does > 1 GFMA/s and > 1 GB/s.
  EXPECT_GT(caps.fma_per_second, 1e9);
  EXPECT_GT(caps.sincos_per_second, 1e7);
  EXPECT_GT(caps.mem_bw_gbs, 1.0);
  const Machine host = host_machine();
  EXPECT_GT(host.peak_tflops, 0.0);
  EXPECT_GT(host.sincos_fma_slots, 1.0);
}

// --- rooflines ---------------------------------------------------------------

TEST(RooflineTest, BandwidthBoundBelowRidgeComputeBoundAbove) {
  const Machine m = pascal();
  const double ridge = ridge_point(m);
  EXPECT_LT(roofline_dev(m, ridge / 2.0), m.peak_ops());
  EXPECT_DOUBLE_EQ(roofline_dev(m, ridge * 2.0), m.peak_ops());
  // On the ridge both terms agree.
  EXPECT_NEAR(roofline_dev(m, ridge), m.peak_ops(), 1.0);
}

TEST(RooflineTest, SharedRooflineDefaultsToPeakOnCpus) {
  EXPECT_DOUBLE_EQ(roofline_shared(haswell(), 0.001), haswell().peak_ops());
  EXPECT_LT(roofline_shared(pascal(), 0.1), pascal().peak_ops());
}

TEST(OpmixModelTest, LargeRhoApproachesFmaPeak) {
  for (const Machine& m : paper_machines()) {
    const double at_large = opmix_ceiling(m, 1e6);
    EXPECT_NEAR(at_large / m.peak_ops(), 1.0, 0.01) << m.name;
  }
}

TEST(OpmixModelTest, PascalStaysHighAtSmallRho) {
  // Fig 12's key observation: hardware SFUs keep Pascal's throughput high
  // as rho decreases, while shared-ALU machines collapse.
  const Machine p = pascal();
  const Machine f = fiji();
  const double p_frac = opmix_ceiling(p, 1.0) / p.peak_ops();
  const double f_frac = opmix_ceiling(f, 1.0) / f.peak_ops();
  EXPECT_GT(p_frac, 0.20);
  EXPECT_LT(f_frac, 0.15);
}

TEST(OpmixModelTest, SharedAluCurvesAreMonotonic) {
  for (const Machine& m : {haswell(), fiji()}) {
    double prev = 0.0;
    for (double rho : {1.0, 2.0, 4.0, 8.0, 17.0, 64.0}) {
      const double v = opmix_ceiling(m, rho);
      EXPECT_GE(v, prev) << m.name << " rho=" << rho;
      prev = v;
    }
  }
}

TEST(OpmixModelTest, SfuOpsCanExceedFmaPeak) {
  // On Pascal the sincos ops issue on the SFU queue and ride along with a
  // saturated FMA pipe, so counted op throughput can exceed the FMA-only
  // "peak" near rho = 1/sfu_rate — which is why the paper notes that peak
  // is only attained "if non-masked FMA instructions are used exclusively".
  const Machine p = pascal();
  const double at8 = opmix_ceiling(p, 8.0);
  EXPECT_GT(at8, p.peak_ops());
  EXPECT_LT(at8, 1.3 * p.peak_ops());
}

TEST(OpmixModelTest, Rho17CeilingsReproducePaperFig11) {
  // At the kernels' rho = 17 the dashed ceilings of Fig 11 emerge:
  // HASWELL and FIJI far below peak, PASCAL near peak.
  const double h = opmix_ceiling(haswell(), 17.0) / haswell().peak_ops();
  const double f = opmix_ceiling(fiji(), 17.0) / fiji().peak_ops();
  const double p = opmix_ceiling(pascal(), 17.0) / pascal().peak_ops();
  EXPECT_LT(h, 0.30);  // paper: ~0.2 of peak
  EXPECT_GT(f, 0.40);
  EXPECT_LT(f, 0.75);
  EXPECT_GT(p, 0.95);  // SFUs: sincos rides along, FMA pipe saturated
}

TEST(OpmixMeasuredTest, HostCurveIsMonotonicAndPositive) {
  auto points = measure_host_opmix({1.0, 8.0, 64.0}, 0.02);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) EXPECT_GT(p.gops, 0.0);
  // More FMAs per sincos -> higher op throughput.
  EXPECT_GT(points[2].gops, points[0].gops);
}

// --- power ---------------------------------------------------------------------

TEST(PowerTest, DevicePowerInterpolatesIdleToTdp) {
  const Machine m = pascal();
  EXPECT_DOUBLE_EQ(device_power_w(m, 0.0), m.idle_w);
  EXPECT_DOUBLE_EQ(device_power_w(m, 1.0), m.tdp_w);
  EXPECT_GT(device_power_w(m, 0.5), m.idle_w);
  EXPECT_LT(device_power_w(m, 0.5), m.tdp_w);
}

TEST(PowerTest, EnergyScalesWithTime) {
  const Machine m = fiji();
  EXPECT_DOUBLE_EQ(device_energy_j(m, 2.0, 0.9),
                   2.0 * device_power_w(m, 0.9));
  EXPECT_DOUBLE_EQ(host_energy_j(m, 3.0), 3.0 * m.host_busy_w);
  EXPECT_DOUBLE_EQ(host_energy_j(haswell(), 3.0), 0.0);
}

TEST(PowerTest, InvalidArgumentsThrow) {
  EXPECT_THROW(device_power_w(pascal(), 1.5), Error);
  EXPECT_THROW(device_energy_j(pascal(), -1.0), Error);
}

// --- cycle model ------------------------------------------------------------------

struct ModelFixture {
  sim::Dataset ds;
  Parameters params;
  Plan plan;

  static ModelFixture make() {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 16;
    cfg.nr_timesteps = 128;
    cfg.nr_channels = 16;
    cfg.grid_size = 512;
    cfg.subgrid_size = 24;
    auto ds = sim::make_benchmark_dataset_no_vis(cfg);
    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = cfg.nr_stations;
    params.kernel_size = 8;
    params.aterm_interval = 64;
    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    return {std::move(ds), params, std::move(plan)};
  }
};

TEST(CycleModelTest, KernelsDominateRuntime) {
  auto f = ModelFixture::make();
  for (const Machine& m : paper_machines()) {
    const CycleModel model = model_imaging_cycle(m, f.plan);
    const double kernel_seconds =
        model.stage(stage::kGridder).seconds +
        model.stage(stage::kDegridder).seconds;
    // Paper §VI-B: "runtime is dominated by the gridder and degridder
    // kernels (more than 93%)".
    EXPECT_GT(kernel_seconds / model.total_seconds, 0.80) << m.name;
  }
}

TEST(CycleModelTest, GpusAreMuchFasterThanCpu) {
  auto f = ModelFixture::make();
  const CycleModel h = model_imaging_cycle(haswell(), f.plan);
  const CycleModel fi = model_imaging_cycle(fiji(), f.plan);
  const CycleModel p = model_imaging_cycle(pascal(), f.plan);
  // Paper: "Both GPUs complete the task almost an order of magnitude
  // faster than HASWELL."
  EXPECT_GT(h.total_seconds / fi.total_seconds, 5.0);
  EXPECT_GT(h.total_seconds / p.total_seconds, 8.0);
}

TEST(CycleModelTest, GpusAreMoreEnergyEfficient) {
  auto f = ModelFixture::make();
  const CycleModel h = model_imaging_cycle(haswell(), f.plan);
  const CycleModel p = model_imaging_cycle(pascal(), f.plan);
  // Fig 14: total energy an order of magnitude lower on GPUs, even with
  // the host included.
  EXPECT_GT(h.device_joules / (p.device_joules + p.host_joules), 5.0);
}

TEST(CycleModelTest, EfficiencyTargetsMatchPaperFig15) {
  auto f = ModelFixture::make();
  // Modeled GFlops/W for the gridder kernel must land near the paper's
  // headline numbers: PASCAL ~32, FIJI ~13, HASWELL ~1.5.
  auto gridder_eff = [&](const Machine& m) {
    const CycleModel model = model_imaging_cycle(m, f.plan);
    const auto& s = model.stage(stage::kGridder);
    return gflops_per_watt(m, s.counts, s.seconds, 0.95);
  };
  EXPECT_NEAR(gridder_eff(pascal()), 32.0, 8.0);
  EXPECT_NEAR(gridder_eff(fiji()), 13.0, 5.0);
  EXPECT_NEAR(gridder_eff(haswell()), 1.5, 1.0);
}

TEST(CycleModelTest, PascalGridderNearPaperFraction) {
  auto f = ModelFixture::make();
  const Machine p = pascal();
  const OpCounts counts = gridder_op_counts(f.plan);
  const double achieved = modeled_ops_per_second(p, counts);
  // Paper: 74% of peak for the gridder; the degridder is lower (55%).
  EXPECT_NEAR(achieved / p.peak_ops(), 0.74, 0.10);
  const OpCounts dg = degridder_op_counts(f.plan);
  EXPECT_LT(modeled_ops_per_second(p, dg), achieved);
}

TEST(CycleModelTest, ThroughputScalesWithMachineSpeed) {
  auto f = ModelFixture::make();
  const CycleModel h = model_imaging_cycle(haswell(), f.plan);
  const CycleModel p = model_imaging_cycle(pascal(), f.plan);
  EXPECT_GT(p.gridding_vis_per_second(), 5.0 * h.gridding_vis_per_second());
  EXPECT_GT(p.degridding_vis_per_second(),
            5.0 * h.degridding_vis_per_second());
}

// --- measured roofline attribution ------------------------------------------------

obs::StageMetrics make_metrics(double seconds, OpCounts ops,
                               std::uint64_t moved_bytes = 0) {
  obs::StageMetrics m;
  m.seconds = seconds;
  m.invocations = 1;
  m.ops = ops;
  m.moved_bytes = moved_bytes;
  return m;
}

TEST(AttributionTest, ClassifiesSyntheticStagesByTightestCeiling) {
  const Machine h = haswell();
  obs::MetricsSnapshot snapshot;

  // Pure FMA at very high intensity: compute-bound at the machine peak.
  OpCounts compute;
  compute.fma = 1'000'000'000;
  compute.dev_bytes = 8;
  snapshot["a-compute"] = make_metrics(1.0, compute);

  // rho = 1 on a SharedAlu machine: the op-mix ceiling collapses well
  // below the peak -> sincos-bound.
  OpCounts sincos_heavy;
  sincos_heavy.fma = 1'000'000;
  sincos_heavy.sincos = 1'000'000;
  sincos_heavy.dev_bytes = 8;
  snapshot["b-sincos"] = make_metrics(1.0, sincos_heavy);

  // Tiny intensity: the device-memory roofline binds.
  OpCounts streaming;
  streaming.add = 1'000;
  streaming.dev_bytes = 100'000'000;
  snapshot["c-streaming"] = make_metrics(1.0, streaming);

  // No counters at all -> unattributable.
  snapshot["d-untracked"] = make_metrics(1.0, OpCounts{});

  const auto rows = attribute_roofline(h, snapshot);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].bound, RooflineBound::kCompute);
  EXPECT_DOUBLE_EQ(rows[0].bound_ceiling, h.peak_ops());
  EXPECT_EQ(rows[1].bound, RooflineBound::kSincos);
  EXPECT_LT(rows[1].bound_ceiling, h.peak_ops());
  EXPECT_DOUBLE_EQ(rows[1].ceiling_opmix, opmix_ceiling(h, 1.0));
  EXPECT_EQ(rows[2].bound, RooflineBound::kBandwidth);
  EXPECT_DOUBLE_EQ(rows[2].bound_ceiling,
                   roofline_dev(h, streaming.intensity_dev()));
  EXPECT_EQ(rows[3].bound, RooflineBound::kNone);
  EXPECT_DOUBLE_EQ(rows[3].achieved_ops, 0.0);
  EXPECT_STREQ(to_string(rows[1].bound), "sincos");
}

TEST(AttributionTest, SharedMemoryCeilingBindsOnGpus) {
  const Machine p = pascal();
  ASSERT_GT(p.shared_bw_gbs, 0.0);
  OpCounts counts;
  counts.fma = 1'000'000'000;  // plain-FMA peak on the op-mix axis
  counts.dev_bytes = 8;        // intensity so high dev bandwidth is free
  counts.shared_bytes = 1'000'000'000'000;  // crushing shared traffic
  obs::MetricsSnapshot snapshot;
  snapshot["kernel"] = make_metrics(1.0, counts);
  const auto rows = attribute_roofline(p, snapshot);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].bound, RooflineBound::kSharedBandwidth);
  EXPECT_DOUBLE_EQ(rows[0].bound_ceiling,
                   roofline_shared(p, counts.intensity_shared()));
  // The same counts on a CPU (no shared tier) cannot be shared-bound.
  const auto cpu_rows = attribute_roofline(haswell(), snapshot);
  EXPECT_NE(cpu_rows[0].bound, RooflineBound::kSharedBandwidth);
  EXPECT_DOUBLE_EQ(cpu_rows[0].ceiling_shared, 0.0);
}

TEST(AttributionTest, PureTrafficStageReportsBandwidth) {
  const Machine h = haswell();
  obs::MetricsSnapshot snapshot;
  // An adder-like stage: no ops, only measured moved bytes.
  snapshot["adder"] = make_metrics(0.5, OpCounts{}, /*moved_bytes=*/
                                   static_cast<std::uint64_t>(34e9));
  const auto rows = attribute_roofline(h, snapshot);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].bound, RooflineBound::kBandwidth);
  EXPECT_NEAR(rows[0].achieved_bw_gbs, 68.0, 1e-9);  // 34 GB / 0.5 s
  EXPECT_NEAR(rows[0].pct_of_bound, 50.0, 1e-9);     // of 136 GB/s
}

TEST(AttributionTest, MeasuredRunAgreesWithAnalyticCounts) {
  auto f = ModelFixture::make();
  Processor proc(f.params);
  Array3D<cfloat> grid(4, f.params.grid_size, f.params.grid_size);
  Array3D<Visibility> vis(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                          f.ds.nr_channels());
  obs::AggregateSink sink;
  proc.degrid_visibilities(f.plan, f.ds.uvw.cview(), grid.cview(),
                           sim::make_identity_aterms(
                               (f.ds.nr_timesteps() + 63) / 64,
                               f.params.nr_stations, f.params.subgrid_size)
                               .cview(),
                           vis.view(), sink);

  const Machine host = host_machine();
  const auto rows = attribute_roofline(host, sink.snapshot());
  const auto it = std::find_if(rows.begin(), rows.end(), [](const auto& r) {
    return r.stage == stage::kDegridder;
  });
  ASSERT_NE(it, rows.end());

  // The attributed op count IS the analytic one, and the achieved rate
  // reproduces ops/seconds to floating-point round-off — the paper's
  // "known operation count over measured runtime" methodology.
  const OpCounts analytic = degridder_op_counts(f.plan);
  EXPECT_EQ(it->ops, analytic.ops());
  ASSERT_GT(it->seconds, 0.0);
  const double expected = static_cast<double>(analytic.ops()) / it->seconds;
  EXPECT_NEAR(it->achieved_ops, expected, 1e-6 * expected);
  EXPECT_NEAR(it->pct_of_peak, 100.0 * expected / host.peak_ops(),
              1e-6 * it->pct_of_peak);
  // Sanity: a real kernel cannot beat the probed machine peak by much
  // (generous 2x headroom absorbs probe noise on loaded CI machines).
  EXPECT_GT(it->pct_of_peak, 0.0);
  EXPECT_LT(it->pct_of_peak, 200.0);
  // And the binding ceiling is one of the three candidates.
  EXPECT_NE(it->bound, RooflineBound::kNone);
  EXPECT_GT(it->bound_ceiling, 0.0);
  EXPECT_NEAR(it->pct_of_bound, 100.0 * it->achieved_ops / it->bound_ceiling,
              1e-9 * it->pct_of_bound);
}

TEST(AttributionTest, TotalAggregatesOnlyOpCountedStages) {
  const Machine h = haswell();
  obs::MetricsSnapshot snapshot;
  OpCounts a;
  a.fma = 100;
  a.dev_bytes = 8;
  OpCounts b;
  b.add = 50;
  b.dev_bytes = 8;
  snapshot["a"] = make_metrics(1.0, a);
  snapshot["b"] = make_metrics(1.0, b);
  snapshot["untracked"] = make_metrics(5.0, OpCounts{});  // excluded
  const auto total = attribute_total(h, snapshot);
  EXPECT_EQ(total.stage, "total");
  EXPECT_EQ(total.ops, a.ops() + b.ops());
  EXPECT_DOUBLE_EQ(total.seconds, 2.0);
  EXPECT_DOUBLE_EQ(total.achieved_ops, (a.ops() + b.ops()) / 2.0);
}

TEST(AttributionTest, JsonIsValidAndCarriesTheSchema) {
  const Machine h = haswell();
  obs::MetricsSnapshot snapshot;
  OpCounts ops;
  ops.fma = 17;
  ops.sincos = 1;
  ops.dev_bytes = 1;  // intensity far above the ridge: op-mix ceiling binds
  snapshot["gridder\"quoted"] = make_metrics(0.5, ops);
  std::ostringstream oss;
  write_attribution_json(oss, h, attribute_roofline(h, snapshot));
  const auto doc = testjson::parse(oss.str());
  EXPECT_EQ(doc.at("schema").string, "idg-roofline/v2");
  EXPECT_EQ(doc.at("machine").string, "HASWELL");
  ASSERT_EQ(doc.at("stages").array.size(), 1u);
  const auto& s = doc.at("stages").at(0);
  EXPECT_EQ(s.at("name").string, "gridder\"quoted");
  EXPECT_EQ(s.at("ops").number, static_cast<double>(ops.ops()));
  EXPECT_EQ(s.at("bound").string, "sincos");
  EXPECT_GT(s.at("achieved_gops").number, 0.0);
}

TEST(AttributionTest, JoinsHandBuiltHwCounters) {
  const Machine h = haswell();
  obs::MetricsSnapshot snapshot;
  OpCounts ops;
  ops.fma = 500;          // 1000 analytic ops
  ops.dev_bytes = 4096;   // the analytic traffic model
  obs::StageMetrics m = make_metrics(2.0, ops);
  m.hw.samples = 4;
  m.hw.cycles = 4000;
  m.hw.instructions = 6000;
  m.hw.llc_loads = 128;
  m.hw.llc_misses = 32;   // 32 * 64 = 2048 measured bytes
  m.hw.time_enabled_ns = 100;
  m.hw.time_running_ns = 100;
  snapshot["gridder"] = m;
  snapshot["untouched"] = make_metrics(1.0, ops);  // no counters recorded

  const auto rows = attribute_roofline(h, snapshot);
  ASSERT_EQ(rows.size(), 2u);
  const auto& g = rows[0];
  ASSERT_EQ(g.stage, "gridder");
  ASSERT_TRUE(g.hw_valid);
  EXPECT_EQ(g.hw.instructions, 6000u);
  EXPECT_DOUBLE_EQ(g.hw_instr_per_s, 3000.0);          // 6000 / 2 s
  EXPECT_DOUBLE_EQ(g.hw_llc_gbs, 2048.0 / 2.0 / 1e9);  // miss bytes / s
  EXPECT_DOUBLE_EQ(g.hw_instr_per_op, 6.0);            // 6000 / 1000 ops
  // Agreement ratio: measured LLC-miss bytes over analytic dev bytes.
  EXPECT_DOUBLE_EQ(g.hw_bytes_vs_analytic, 2048.0 / 4096.0);
  // A stage with no recorded counters stays hw-less.
  EXPECT_FALSE(rows[1].hw_valid);
  EXPECT_DOUBLE_EQ(rows[1].hw_instr_per_s, 0.0);

  // The aggregate total inherits the merged counters of the hw stages.
  const auto total = attribute_total(h, snapshot);
  ASSERT_TRUE(total.hw_valid);
  EXPECT_EQ(total.hw.instructions, 6000u);
}

TEST(AttributionTest, PureTrafficStageJoinsAgainstMovedBytes) {
  const Machine h = haswell();
  obs::MetricsSnapshot snapshot;
  // Adder-like: no analytic ops, only moved bytes — the agreement ratio
  // falls back to moved_bytes as the analytic side.
  obs::StageMetrics m = make_metrics(1.0, OpCounts{}, /*moved_bytes=*/8192);
  m.hw.samples = 1;
  m.hw.llc_loads = 256;
  m.hw.llc_misses = 64;  // 4096 measured bytes
  snapshot["adder"] = m;
  const auto rows = attribute_roofline(h, snapshot);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_TRUE(rows[0].hw_valid);
  EXPECT_EQ(rows[0].bound, RooflineBound::kBandwidth);
  EXPECT_DOUBLE_EQ(rows[0].hw_bytes_vs_analytic, 4096.0 / 8192.0);
  EXPECT_DOUBLE_EQ(rows[0].hw_instr_per_op, 0.0);  // no ops to divide by
}

TEST(AttributionTest, HwBlockInV2JsonOnlyWhenMeasured) {
  const Machine h = haswell();
  obs::MetricsSnapshot snapshot;
  OpCounts ops;
  ops.fma = 17;
  ops.dev_bytes = 1;
  obs::StageMetrics with_hw = make_metrics(0.5, ops);
  with_hw.hw.samples = 2;
  with_hw.hw.cycles = 100;
  with_hw.hw.instructions = 250;
  with_hw.hw.llc_misses = 2;
  snapshot["measured"] = with_hw;
  snapshot["unmeasured"] = make_metrics(0.5, ops);

  std::ostringstream oss;
  write_attribution_json(oss, h, attribute_roofline(h, snapshot));
  const auto doc = testjson::parse(oss.str());
  const auto& measured = doc.at("stages").at(0);
  ASSERT_EQ(measured.at("name").string, "measured");
  const auto& hw = measured.at("hw");
  EXPECT_EQ(hw.at("instructions").number, 250.0);
  EXPECT_EQ(hw.at("llc_miss_bytes").number, 128.0);
  EXPECT_DOUBLE_EQ(hw.at("ipc").number, 2.5);
  EXPECT_DOUBLE_EQ(hw.at("bytes_vs_analytic").number, 128.0);  // 128 B / 1 B
  const auto& unmeasured = doc.at("stages").at(1);
  ASSERT_EQ(unmeasured.at("name").string, "unmeasured");
  EXPECT_THROW((void)unmeasured.at("hw"), std::exception);
}

TEST(CycleModelTest, UnknownStageThrows) {
  auto f = ModelFixture::make();
  const CycleModel model = model_imaging_cycle(pascal(), f.plan);
  EXPECT_THROW(model.stage("nonexistent"), Error);
}

}  // namespace
