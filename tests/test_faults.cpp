// Fault-tolerance suite (ctest label `faults`, DESIGN.md §11).
//
// Three layers are pinned here:
//   1. the error-propagation machinery (BoundedQueue close_with_error,
//      PipelineError) in isolation,
//   2. the flagged/corrupt-data policies (Parameters::bad_sample_policy)
//      end to end on both execution backends, including the bit-identity
//      guarantee of kZeroAndContinue and the exported counters,
//   3. the deterministic fault-injection harness (common/faultinject.hpp):
//      every injected failure either recovers per policy or surfaces as a
//      descriptive idg::Error within bounded time — never a hang, crash or
//      silently wrong grid. Injection cases GTEST_SKIP unless the build
//      compiled the hooks in (cmake -DIDG_FAULT_INJECTION=ON).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/faultinject.hpp"
#include "idg/backend.hpp"
#include "idg/parameters.hpp"
#include "idg/pipelined.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/scrub.hpp"
#include "obs/export.hpp"
#include "obs/sink.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;
using namespace std::chrono_literals;

// --- fixture ----------------------------------------------------------------

struct Setup {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;

  static Setup make(BadSamplePolicy policy = BadSamplePolicy::kZeroAndContinue) {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 6;
    cfg.nr_timesteps = 32;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    cfg.subgrid_size = 16;
    auto ds = sim::make_benchmark_dataset(cfg);

    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = cfg.nr_stations;
    params.kernel_size = 4;
    params.work_group_size = 4;  // several work groups in flight
    params.bad_sample_policy = policy;
    Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
    auto aterms =
        sim::make_identity_aterms(1, cfg.nr_stations, cfg.subgrid_size);
    return {std::move(ds), params, std::move(plan), std::move(aterms)};
  }

  Array3D<cfloat> run_grid(const std::string& backend_name,
                           obs::MetricsSink& sink = obs::null_sink()) const {
    auto backend = make_backend(backend_name, params);
    Array3D<cfloat> grid(kNrPolarizations, params.grid_size, params.grid_size);
    backend->grid(plan, ds.uvw.cview(), ds.visibilities.cview(),
                  ds.flag_view(), aterms.cview(), grid.view(), sink);
    return grid;
  }
};

bool grids_bit_identical(const Array3D<cfloat>& a, const Array3D<cfloat>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cfloat)) == 0;
}

/// RAII: no injection arms leak from one test into the next.
struct DisarmGuard {
  DisarmGuard() { fault::Injector::instance().disarm_all(); }
  ~DisarmGuard() { fault::Injector::instance().disarm_all(); }
};

// --- 1. error-propagation machinery -----------------------------------------

TEST(BoundedQueueFaultsTest, CloseWithErrorUnblocksFullQueueProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));  // now full
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    queue.close_with_error();
  });
  // Would deadlock forever without close_with_error waking the wait.
  EXPECT_FALSE(queue.push(2));
  closer.join();
}

TEST(BoundedQueueFaultsTest, CloseWithErrorDiscardsBacklogAndWakesConsumers) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.close_with_error(
      std::make_exception_ptr(Error("stage exploded")));
  int out = 0;
  EXPECT_FALSE(queue.pop(out));  // backlog discarded, not drained
  EXPECT_TRUE(queue.closed());
  ASSERT_NE(queue.error(), nullptr);
  try {
    std::rethrow_exception(queue.error());
    FAIL();
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "stage exploded");
  }
}

TEST(BoundedQueueFaultsTest, GracefulCloseStillDrains) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.close();
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(out));
  EXPECT_FALSE(queue.push(3));  // refused after close
}

TEST(BoundedQueueFaultsTest, TimedWaitsReportTimeoutClosedAndOk) {
  BoundedQueue<int> queue(1);
  int out = 0;
  EXPECT_EQ(queue.pop_for(out, 10ms), QueueWaitResult::kTimeout);
  ASSERT_TRUE(queue.push(7));
  EXPECT_EQ(queue.push_for(8, 10ms), QueueWaitResult::kTimeout);  // full
  EXPECT_EQ(queue.pop_for(out, 10ms), QueueWaitResult::kOk);
  EXPECT_EQ(out, 7);
  queue.close_with_error();
  EXPECT_EQ(queue.pop_for(out, 10ms), QueueWaitResult::kClosed);
  EXPECT_EQ(queue.push_for(9, 10ms), QueueWaitResult::kClosed);
}

TEST(PipelineErrorTest, FirstFailureWinsAndRethrowsWithContext) {
  PipelineError error;
  EXPECT_FALSE(error.failed());
  error.rethrow_if_failed();  // no-op
  EXPECT_TRUE(error.set("gridder", 3,
                        std::make_exception_ptr(Error("kernel died"))));
  EXPECT_FALSE(error.set("adder", 5,
                         std::make_exception_ptr(Error("later failure"))));
  EXPECT_TRUE(error.failed());
  try {
    error.rethrow_if_failed();
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stage 'gridder'"), std::string::npos) << what;
    EXPECT_NE(what.find("work group 3"), std::string::npos) << what;
    EXPECT_NE(what.find("kernel died"), std::string::npos) << what;
    EXPECT_EQ(what.find("later failure"), std::string::npos) << what;
  }
}

// --- 2. flagged / corrupt-data policies -------------------------------------

TEST(BadSamplePolicyTest, RejectThrowsDescriptivelyOnFlaggedSample) {
  auto s = Setup::make(BadSamplePolicy::kReject);
  sim::apply_rfi_flags(s.ds, 0.0);  // allocate the all-clear mask
  s.ds.flags(2, 5, 1) = 1;
  try {
    s.run_grid("synchronous");
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("baseline 2"), std::string::npos) << what;
    EXPECT_NE(what.find("time 5"), std::string::npos) << what;
    EXPECT_NE(what.find("channel 1"), std::string::npos) << what;
    EXPECT_NE(what.find("flagged"), std::string::npos) << what;
    EXPECT_NE(what.find("reject"), std::string::npos) << what;
  }
}

TEST(BadSamplePolicyTest, RejectThrowsOnNonFiniteSample) {
  auto s = Setup::make(BadSamplePolicy::kReject);
  s.ds.visibilities(1, 3, 0).xx =
      cfloat(std::numeric_limits<float>::quiet_NaN(), 0.0f);
  try {
    s.run_grid("synchronous");
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
        << e.what();
  }
}

TEST(BadSamplePolicyTest, CleanDataGridsIdenticallyUnderEveryPolicy) {
  auto reference = Setup::make(BadSamplePolicy::kReject);
  const auto ref_grid = reference.run_grid("synchronous");
  for (const auto policy : {BadSamplePolicy::kZeroAndContinue,
                            BadSamplePolicy::kSkipWorkGroup}) {
    auto s = Setup::make(policy);
    EXPECT_TRUE(grids_bit_identical(s.run_grid("synchronous"), ref_grid));
  }
}

TEST(BadSamplePolicyTest, ZeroAndContinueIsBitIdenticalToPreScrubbedData) {
  // The acceptance criterion: gridding with flags + kZeroAndContinue equals
  // (bit for bit) gridding a dataset whose flagged samples were zeroed
  // beforehand, on BOTH backends.
  for (const char* backend : {"synchronous", "pipelined"}) {
    auto flagged = Setup::make(BadSamplePolicy::kZeroAndContinue);
    sim::apply_rfi_flags(flagged.ds, 0.05, 11);

    auto prescrubbed = Setup::make(BadSamplePolicy::kZeroAndContinue);
    for (std::size_t i = 0; i < flagged.ds.flags.size(); ++i) {
      if (flagged.ds.flags.data()[i] != 0) {
        prescrubbed.ds.visibilities.data()[i] = Visibility{};
      }
    }
    // No mask on the reference: it grids the pre-zeroed cube directly.
    ASSERT_EQ(prescrubbed.ds.flags.size(), 0u);

    const auto grid_flagged = flagged.run_grid(backend);
    const auto grid_reference = prescrubbed.run_grid(backend);
    EXPECT_TRUE(grids_bit_identical(grid_flagged, grid_reference))
        << "backend " << backend;
  }
}

TEST(BadSamplePolicyTest, NonFiniteSamplesAreScrubbedNotGridded) {
  auto poisoned = Setup::make(BadSamplePolicy::kZeroAndContinue);
  poisoned.ds.visibilities(0, 0, 0).xy =
      cfloat(0.0f, std::numeric_limits<float>::infinity());
  poisoned.ds.visibilities(3, 7, 2).yy =
      cfloat(std::numeric_limits<float>::quiet_NaN(), 1.0f);

  auto clean = Setup::make(BadSamplePolicy::kZeroAndContinue);
  clean.ds.visibilities(0, 0, 0) = Visibility{};
  clean.ds.visibilities(3, 7, 2) = Visibility{};

  const auto grid_poisoned = poisoned.run_grid("synchronous");
  EXPECT_TRUE(grids_bit_identical(grid_poisoned, clean.run_grid("synchronous")));
  // A grid built from NaN input would be NaN everywhere the subgrid lands.
  for (std::size_t i = 0; i < grid_poisoned.size(); ++i) {
    ASSERT_TRUE(std::isfinite(grid_poisoned.data()[i].real()));
    ASSERT_TRUE(std::isfinite(grid_poisoned.data()[i].imag()));
  }
}

TEST(BadSamplePolicyTest, SkipWorkGroupDropsGroupsAndBackendsAgree) {
  auto s = Setup::make(BadSamplePolicy::kSkipWorkGroup);
  sim::apply_rfi_flags(s.ds, 0.0);
  s.ds.flags(0, 0, 0) = 1;  // poisons every group covering this sample

  obs::AggregateSink sink;
  const auto grid_skip = s.run_grid("synchronous", sink);
  const auto snapshot = sink.snapshot();
  const auto& scrub = snapshot.at(stage::kScrub);
  EXPECT_GT(scrub.skipped_samples, 0u);
  // Fewer gridder invocations than work groups: something was dropped.
  EXPECT_LT(snapshot.at(stage::kGridder).invocations,
            s.plan.nr_work_groups());

  // Both backends must agree bit for bit on the skipped result.
  EXPECT_TRUE(grids_bit_identical(grid_skip, s.run_grid("pipelined")));

  // And the result must differ from gridding everything.
  auto all = Setup::make(BadSamplePolicy::kZeroAndContinue);
  EXPECT_FALSE(grids_bit_identical(grid_skip, all.run_grid("synchronous")));
}

TEST(BadSamplePolicyTest, ScrubCountersFlowIntoSinkAndJsonExport) {
  for (const char* backend : {"synchronous", "pipelined"}) {
    auto s = Setup::make(BadSamplePolicy::kZeroAndContinue);
    sim::apply_rfi_flags(s.ds, 0.0);
    s.ds.flags(1, 2, 3) = 1;
    s.ds.flags(4, 9, 0) = 1;
    s.ds.visibilities(2, 2, 2).xx =
        cfloat(std::numeric_limits<float>::quiet_NaN(), 0.0f);

    obs::AggregateSink sink;
    s.run_grid(backend, sink);
    const auto snapshot = sink.snapshot();
    ASSERT_TRUE(snapshot.count(stage::kScrub)) << backend;
    EXPECT_EQ(snapshot.at(stage::kScrub).scrubbed_samples, 3u) << backend;
    EXPECT_EQ(snapshot.at(stage::kScrub).skipped_samples, 0u) << backend;

    const std::string json = obs::to_json(snapshot);
    EXPECT_NE(json.find("\"scrubbed_samples\": 3"), std::string::npos)
        << backend;
    EXPECT_NE(json.find("\"schema\": \"idg-obs/v8\""), std::string::npos);
  }
}

TEST(BadSamplePolicyTest, DegridZeroAndContinueZeroesFlaggedPredictions) {
  for (const char* backend_name : {"synchronous", "pipelined"}) {
    auto s = Setup::make(BadSamplePolicy::kZeroAndContinue);
    sim::apply_rfi_flags(s.ds, 0.0);
    s.ds.flags(2, 4, 1) = 1;

    auto backend = make_backend(backend_name, s.params);
    Array3D<cfloat> grid(kNrPolarizations, s.params.grid_size,
                         s.params.grid_size);
    backend->grid(s.plan, s.ds.uvw.cview(), s.ds.visibilities.cview(),
                  s.aterms.cview(), grid.view());

    Array3D<Visibility> predicted(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                  s.ds.nr_channels());
    obs::AggregateSink sink;
    backend->degrid(s.plan, s.ds.uvw.cview(), grid.cview(), s.ds.flag_view(),
                    s.aterms.cview(), predicted.view(), sink);

    const Visibility& v = predicted(2, 4, 1);
    for (int p = 0; p < kNrPolarizations; ++p) {
      EXPECT_EQ(v[p], cfloat(0.0f, 0.0f)) << backend_name;
    }
    // The prediction as a whole must not be trivially zero.
    std::size_t nonzero = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      if (predicted.data()[i].xx != cfloat(0.0f, 0.0f)) ++nonzero;
    }
    EXPECT_GT(nonzero, 0u) << backend_name;
    const auto snapshot = sink.snapshot();
    ASSERT_TRUE(snapshot.count(stage::kScrub)) << backend_name;
    EXPECT_GE(snapshot.at(stage::kScrub).scrubbed_samples, 1u) << backend_name;
  }
}

TEST(BadSamplePolicyTest, DegridRejectThrows) {
  auto s = Setup::make(BadSamplePolicy::kReject);
  sim::apply_rfi_flags(s.ds, 0.0);
  s.ds.flags(1, 1, 1) = 1;
  auto backend = make_backend("synchronous", s.params);
  Array3D<cfloat> grid(kNrPolarizations, s.params.grid_size,
                       s.params.grid_size);
  Array3D<Visibility> predicted(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                s.ds.nr_channels());
  EXPECT_THROW(backend->degrid(s.plan, s.ds.uvw.cview(), grid.cview(),
                               s.ds.flag_view(), s.aterms.cview(),
                               predicted.view(), obs::null_sink()),
               Error);
}

// --- 3. deterministic fault injection ---------------------------------------

#define SKIP_WITHOUT_INJECTION()                                        \
  if (!fault::compiled_in()) {                                          \
    GTEST_SKIP() << "build without -DIDG_FAULT_INJECTION=ON";           \
  }                                                                     \
  DisarmGuard disarm_guard

TEST(FaultInjectorTest, SpecParserAcceptsCatalogueAndRejectsGarbage) {
  SKIP_WITHOUT_INJECTION();
  auto& inj = fault::Injector::instance();
  EXPECT_NO_THROW(inj.arm_from_spec(
      "pipelined.grid.kernel@2=throw;pipelined.grid.fft=delay:10;"
      "processor.grid.buffer=corrupt"));
  EXPECT_TRUE(inj.enabled());
  inj.disarm_all();
  EXPECT_FALSE(inj.enabled());
  EXPECT_THROW(inj.arm_from_spec("site-without-action"), Error);
  EXPECT_THROW(inj.arm_from_spec("site=explode"), Error);
  EXPECT_THROW(inj.arm_from_spec("site=delay:notanumber"), Error);
  EXPECT_THROW(inj.arm_from_spec("=throw"), Error);
}

TEST(FaultInjectorTest, DrawsAreDeterministicAcrossRuns) {
  SKIP_WITHOUT_INJECTION();
  auto& inj = fault::Injector::instance();
  const auto count_fires = [&] {
    inj.disarm_all();
    fault::Arm arm;
    arm.site = "det.site";
    arm.action = fault::Action::kDelay;  // delay 0: observable, harmless
    arm.delay_ms = 0;
    arm.probability = 0.5;
    arm.seed = 42;
    inj.arm(arm);
    for (int i = 0; i < 64; ++i) inj.hit("det.site", i);
    return inj.fired("det.site");
  };
  const auto first = count_fires();
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 64u);  // probability 0.5 must not fire always/never
  EXPECT_EQ(count_fires(), first);
}

struct SiteCase {
  const char* backend;
  const char* site;
};

class FaultSiteTest : public ::testing::TestWithParam<SiteCase> {};

TEST_P(FaultSiteTest, InjectedThrowSurfacesAsDescriptiveErrorNotHang) {
  SKIP_WITHOUT_INJECTION();
  const auto [backend, site] = GetParam();
  fault::Arm arm;
  arm.site = site;
  arm.index = 1;  // fail mid-pipeline, with groups in flight
  fault::Injector::instance().arm(arm);

  auto s = Setup::make();
  ASSERT_GT(s.plan.nr_work_groups(), 2u);
  const auto start = std::chrono::steady_clock::now();
  const bool is_degrid = std::string(site).find("degrid") != std::string::npos;
  try {
    if (is_degrid) {
      auto b = make_backend(backend, s.params);
      Array3D<cfloat> grid(kNrPolarizations, s.params.grid_size,
                           s.params.grid_size);
      Array3D<Visibility> predicted(s.ds.nr_baselines(), s.ds.nr_timesteps(),
                                    s.ds.nr_channels());
      b->degrid(s.plan, s.ds.uvw.cview(), grid.cview(), s.aterms.cview(),
                predicted.view());
    } else {
      s.run_grid(backend);
    }
    FAIL() << "expected idg::Error from site " << site;
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("injected fault"), std::string::npos) << what;
    EXPECT_NE(what.find(site), std::string::npos) << what;
  }
  // Bounded-time failure: a stuck queue would block far longer (the TSan /
  // ASan CI jobs run this whole suite, so a latent deadlock trips there).
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultSiteTest,
    ::testing::Values(
        SiteCase{"synchronous", "processor.grid.kernel"},
        SiteCase{"synchronous", "processor.grid.fft"},
        SiteCase{"synchronous", "processor.grid.adder"},
        SiteCase{"synchronous", "processor.degrid.splitter"},
        SiteCase{"synchronous", "processor.degrid.fft"},
        SiteCase{"synchronous", "processor.degrid.kernel"},
        SiteCase{"pipelined", "pipelined.grid.kernel"},
        SiteCase{"pipelined", "pipelined.grid.fft"},
        SiteCase{"pipelined", "pipelined.grid.adder"},
        SiteCase{"pipelined", "pipelined.grid.push"},
        SiteCase{"pipelined", "pipelined.degrid.splitter"},
        SiteCase{"pipelined", "pipelined.degrid.fft"},
        SiteCase{"pipelined", "pipelined.degrid.kernel"}),
    [](const ::testing::TestParamInfo<SiteCase>& info) {
      std::string name = info.param.site;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(FaultInjectionTest, CorruptedBufferIsDetectedNeverSilentlyGridded) {
  SKIP_WITHOUT_INJECTION();
  for (const auto& [backend, site] :
       {std::pair{"synchronous", "processor.grid.buffer"},
        std::pair{"pipelined", "pipelined.grid.buffer"}}) {
    fault::Injector::instance().disarm_all();
    fault::Arm arm;
    arm.site = site;
    arm.index = 0;
    arm.action = fault::Action::kCorrupt;
    fault::Injector::instance().arm(arm);

    auto s = Setup::make();
    try {
      s.run_grid(backend);
      FAIL() << "corrupted subgrids reached the grid silently (" << site
             << ")";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite subgrid data"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(FaultInjectionTest, DelayedQueuePushRecoversBitIdentical) {
  SKIP_WITHOUT_INJECTION();
  auto reference = Setup::make();
  const auto ref_grid = reference.run_grid("pipelined");

  fault::Arm arm;
  arm.site = "pipelined.grid.push";
  arm.action = fault::Action::kDelay;
  arm.delay_ms = 50;
  fault::Injector::instance().arm(arm);

  auto delayed = Setup::make();
  const auto slow_grid = delayed.run_grid("pipelined");
  EXPECT_GT(fault::Injector::instance().fired("pipelined.grid.push"), 0u);
  EXPECT_TRUE(grids_bit_identical(slow_grid, ref_grid));
}

TEST(FaultInjectionTest, PipelinedFailureReleasesResourcesForTheNextRun) {
  SKIP_WITHOUT_INJECTION();
  // A failed run must leave no stuck threads or poisoned global state: the
  // same backend must produce a correct grid immediately afterwards.
  auto reference = Setup::make();
  const auto ref_grid = reference.run_grid("pipelined");

  fault::Arm arm;
  arm.site = "pipelined.grid.adder";
  arm.index = 0;
  fault::Injector::instance().arm(arm);
  auto s = Setup::make();
  EXPECT_THROW(s.run_grid("pipelined"), Error);

  fault::Injector::instance().disarm_all();
  EXPECT_TRUE(grids_bit_identical(s.run_grid("pipelined"), ref_grid));
}

}  // namespace
