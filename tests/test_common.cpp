// Unit tests for the common substrate: types, arrays, allocator, counters,
// reporting and CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <complex>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/array.hpp"
#include "common/cancel.hpp"
#include "common/cli.hpp"
#include "common/counters.hpp"
#include "common/error.hpp"
#include "common/report.hpp"
#include "common/threadpool.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace {

using idg::cfloat;
using idg::Error;
using idg::Matrix2x2;
using idg::Options;
using idg::WorkerPool;

// --- types -----------------------------------------------------------------

TEST(Matrix2x2Test, IdentityIsMultiplicativeNeutral) {
  Matrix2x2<float> a{{1, 2}, {3, -4}, {0.5f, 0}, {-1, 1}};
  auto i = Matrix2x2<float>::identity();
  auto ai = a * i;
  auto ia = i * a;
  EXPECT_EQ(ai.xx, a.xx);
  EXPECT_EQ(ai.yy, a.yy);
  EXPECT_EQ(ia.xy, a.xy);
  EXPECT_EQ(ia.yx, a.yx);
}

TEST(Matrix2x2Test, AdjointIsInvolution) {
  Matrix2x2<float> a{{1, 2}, {3, -4}, {0.5f, 0.25f}, {-1, 1}};
  auto b = a.adjoint().adjoint();
  EXPECT_EQ(b.xx, a.xx);
  EXPECT_EQ(b.xy, a.xy);
  EXPECT_EQ(b.yx, a.yx);
  EXPECT_EQ(b.yy, a.yy);
}

TEST(Matrix2x2Test, AdjointOfProductReversesOrder) {
  Matrix2x2<float> a{{1, 2}, {3, -4}, {0.5f, 0.25f}, {-1, 1}};
  Matrix2x2<float> b{{0, 1}, {2, 0}, {1, 1}, {3, -2}};
  auto lhs = (a * b).adjoint();
  auto rhs = b.adjoint() * a.adjoint();
  EXPECT_NEAR(std::abs(lhs.xx - rhs.xx), 0.0f, 1e-6f);
  EXPECT_NEAR(std::abs(lhs.xy - rhs.xy), 0.0f, 1e-6f);
  EXPECT_NEAR(std::abs(lhs.yx - rhs.yx), 0.0f, 1e-6f);
  EXPECT_NEAR(std::abs(lhs.yy - rhs.yy), 0.0f, 1e-6f);
}

TEST(Matrix2x2Test, IndexOperatorMatchesMembers) {
  Matrix2x2<float> a{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  EXPECT_EQ(a[0], a.xx);
  EXPECT_EQ(a[1], a.xy);
  EXPECT_EQ(a[2], a.yx);
  EXPECT_EQ(a[3], a.yy);
}

TEST(TypesTest, ComputeNIsZeroAtPhaseCenter) {
  EXPECT_FLOAT_EQ(idg::compute_n(0.0f, 0.0f), 0.0f);
}

TEST(TypesTest, ComputeNMatchesAnalyticValue) {
  const float l = 0.3f, m = -0.4f;
  EXPECT_NEAR(idg::compute_n(l, m), 1.0f - std::sqrt(1.0f - 0.25f), 1e-6f);
}

TEST(TypesTest, ComputeNClampsBeyondHorizon) {
  EXPECT_FLOAT_EQ(idg::compute_n(1.0f, 1.0f), 1.0f);
}

// --- aligned allocator -------------------------------------------------------

TEST(AlignedTest, VectorDataIs64ByteAligned) {
  for (std::size_t n : {1, 3, 17, 1000}) {
    idg::AlignedVector<float> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % idg::kAlignment, 0u);
  }
}

TEST(AlignedTest, ComplexVectorAligned) {
  idg::AlignedVector<cfloat> v(123);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % idg::kAlignment, 0u);
}

// --- arrays ------------------------------------------------------------------

TEST(ArrayTest, RowMajorLayout) {
  idg::Array3D<int> a(2, 3, 4);
  int value = 0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t k = 0; k < 4; ++k) a(i, j, k) = value++;
  EXPECT_EQ(a.data()[0], 0);
  EXPECT_EQ(a.data()[4 * 3], 12);  // (1,0,0)
  EXPECT_EQ(a.data()[2 * 3 * 4 - 1], 23);
}

TEST(ArrayTest, ZeroInitialized) {
  idg::Array2D<cfloat> a(5, 5);
  for (auto v : a) EXPECT_EQ(v, cfloat{});
}

TEST(ArrayTest, FillAndZero) {
  idg::Array1D<float> a(10);
  a.fill(3.5f);
  for (auto v : a) EXPECT_EQ(v, 3.5f);
  a.zero();
  for (auto v : a) EXPECT_EQ(v, 0.0f);
}

TEST(ArrayTest, OutOfRangeIndexThrows) {
  idg::Array2D<int> a(2, 2);
  EXPECT_THROW(a(2, 0), idg::Error);
  EXPECT_THROW(a(0, 5), idg::Error);
}

TEST(ArrayTest, BytesAndSize) {
  idg::Array2D<cfloat> a(8, 16);
  EXPECT_EQ(a.size(), 128u);
  EXPECT_EQ(a.bytes(), 128u * sizeof(cfloat));
}

TEST(ArrayTest, ViewSharesStorage) {
  idg::Array2D<int> a(3, 3);
  auto v = a.view();
  v(1, 1) = 42;
  EXPECT_EQ(a(1, 1), 42);
}

// --- counters ----------------------------------------------------------------

TEST(OpCountsTest, OpsDefinitionMatchesPaper) {
  // One gridder inner iteration: 17 FMAs + 1 sincos = 36 ops, rho = 17.
  idg::OpCounts c;
  c.fma = 17;
  c.sincos = 1;
  EXPECT_EQ(c.ops(), 36u);
  EXPECT_EQ(c.flops(), 34u);
  EXPECT_DOUBLE_EQ(c.rho(), 17.0);
}

TEST(OpCountsTest, AdditionAndScaling) {
  idg::OpCounts a;
  a.fma = 10;
  a.dev_bytes = 100;
  a.visibilities = 5;
  idg::OpCounts b = a + a;
  EXPECT_EQ(b.fma, 20u);
  EXPECT_EQ(b.dev_bytes, 200u);
  b *= 3;
  EXPECT_EQ(b.visibilities, 30u);
}

TEST(OpCountsTest, IntensityComputation) {
  idg::OpCounts c;
  c.fma = 50;  // 100 ops
  c.dev_bytes = 25;
  c.shared_bytes = 200;
  EXPECT_DOUBLE_EQ(c.intensity_dev(), 4.0);
  EXPECT_DOUBLE_EQ(c.intensity_shared(), 0.5);
}

TEST(OpCountsTest, ZeroByteIntensityIsZero) {
  idg::OpCounts c;
  c.fma = 10;
  EXPECT_DOUBLE_EQ(c.intensity_dev(), 0.0);
}

// --- timer ---------------------------------------------------------------------

TEST(TimerTest, StageAccumulation) {
  idg::StageTimes times;
  times.add("gridder", 1.0);
  times.add("gridder", 0.5);
  times.add("adder", 0.25);
  EXPECT_DOUBLE_EQ(times.get("gridder"), 1.5);
  EXPECT_DOUBLE_EQ(times.get("adder"), 0.25);
  EXPECT_DOUBLE_EQ(times.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(times.total(), 1.75);
}

TEST(TimerTest, MergeStageTimes) {
  idg::StageTimes a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 3.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(TimerTest, ScopedTimerAddsNonNegativeTime) {
  idg::StageTimes times;
  { idg::ScopedStageTimer t(times, "scope"); }
  EXPECT_GE(times.get("scope"), 0.0);
}

// --- report --------------------------------------------------------------------

TEST(ReportTest, TablePrintsAlignedColumns) {
  idg::Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 1);
  t.row().add("b").add(std::uint64_t{42});
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(ReportTest, TooManyCellsThrows) {
  idg::Table t({"only"});
  t.row().add("x");
  EXPECT_THROW(t.add("y"), idg::Error);
}

TEST(ReportTest, AddBeforeRowThrows) {
  idg::Table t({"a"});
  EXPECT_THROW(t.add("x"), idg::Error);
}

TEST(ReportTest, SiFormat) {
  EXPECT_EQ(idg::si_format(1500.0, 1), "1.5 k");
  EXPECT_EQ(idg::si_format(2.5e9, 2), "2.50 G");
  EXPECT_EQ(idg::si_format(12.0, 0), "12 ");
}

TEST(ReportTest, AsciiBar) {
  EXPECT_EQ(idg::ascii_bar(1.0, 4), "####");
  EXPECT_EQ(idg::ascii_bar(0.0, 4), "....");
  EXPECT_EQ(idg::ascii_bar(0.5, 4), "##..");
  EXPECT_EQ(idg::ascii_bar(2.0, 4), "####");  // clamped
}

// --- cli -----------------------------------------------------------------------

TEST(CliTest, ParsesValuesAndFlags) {
  const char* argv[] = {"prog", "--stations", "20", "--paper", "--scale=0.5",
                        "pos1"};
  idg::Options opts(6, argv);
  EXPECT_EQ(opts.get("stations", 0L), 20);
  EXPECT_TRUE(opts.flag("paper"));
  EXPECT_DOUBLE_EQ(opts.get("scale", 1.0), 0.5);
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos1");
}

TEST(CliTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  idg::Options opts(1, argv);
  EXPECT_EQ(opts.get("stations", 42L), 42);
  EXPECT_EQ(opts.get("name", std::string("dflt")), "dflt");
  EXPECT_FALSE(opts.flag("paper"));
}

TEST(CliTest, MissingValueThrows) {
  const char* argv[] = {"prog", "--stations"};
  EXPECT_THROW(idg::Options(2, argv), idg::Error);
}

TEST(CliTest, BadIntegerThrows) {
  const char* argv[] = {"prog", "--stations", "abc"};
  idg::Options opts(3, argv);
  EXPECT_THROW(opts.get("stations", 0L), idg::Error);
}

TEST(CliTest, EnvironmentFallback) {
  ::setenv("IDG_BENCH_GRID_SIZE", "128", 1);
  const char* argv[] = {"prog"};
  idg::Options opts(1, argv);
  EXPECT_EQ(opts.get("grid-size", 0L), 128);
  ::unsetenv("IDG_BENCH_GRID_SIZE");
}

TEST(CliTest, CommandLineBeatsEnvironment) {
  ::setenv("IDG_BENCH_GRID_SIZE", "128", 1);
  const char* argv[] = {"prog", "--grid-size", "256"};
  idg::Options opts(3, argv);
  EXPECT_EQ(opts.get("grid-size", 0L), 256);
  ::unsetenv("IDG_BENCH_GRID_SIZE");
}

// --- worker pool -------------------------------------------------------------

TEST(WorkerPoolTest, CoversEveryIndexExactlyOnce) {
  idg::WorkerPool pool(3);
  EXPECT_EQ(pool.nr_threads(), 4u);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(1000,
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < counts.size(); ++i)
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(WorkerPoolTest, ReusableAcrossJobs) {
  idg::WorkerPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    const std::size_t n = static_cast<std::size_t>(round % 7);  // incl. 0
    pool.parallel_for(n, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    });
    EXPECT_EQ(sum.load(), static_cast<int>(n * (n + 1) / 2));
  }
}

TEST(WorkerPoolTest, ZeroWorkersRunsInlineInOrder) {
  idg::WorkerPool pool(0);
  EXPECT_EQ(pool.nr_threads(), 1u);
  std::vector<std::size_t> seen;
  pool.parallel_for(5, [&](std::size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(seen[i], i);
}


TEST(CliTest, DuplicateOptionIsRejected) {
  const char* argv[] = {"prog", "--scale=0.5", "--scale", "2"};
  try {
    Options opts(4, argv);
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate option --scale"),
              std::string::npos)
        << e.what();
  }
}

TEST(CliTest, DuplicateFlagIsRejected) {
  const char* argv[] = {"prog", "--paper", "--paper"};
  EXPECT_THROW(Options(3, argv), Error);
}

TEST(CliTest, UnknownOptionsRejectedWhenCatalogueGiven) {
  // All problems must surface in ONE error, not one per run.
  const char* argv[] = {"prog", "--grid=64", "--subgird=24", "--chanels", "8"};
  try {
    Options opts(5, argv, {"paper"}, {"grid", "subgrid", "channels"});
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown option --subgird"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown option --chanels"), std::string::npos) << what;
    EXPECT_EQ(what.find("--grid"), std::string::npos) << what;
  }
}

TEST(CliTest, KnownCatalogueAcceptsListedOptionsAndFlags) {
  const char* argv[] = {"prog", "--grid", "64", "--paper"};
  Options opts(4, argv, {"paper"}, {"grid"});
  EXPECT_EQ(opts.get("grid", 0L), 64L);
  EXPECT_TRUE(opts.flag("paper"));
}

TEST(WorkerPoolTest, ExceptionInWorkerPropagatesToCaller) {
  WorkerPool pool(3);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 13) throw Error("boom at 13");
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected idg::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom at 13"), std::string::npos);
  }
  // The pool must stay usable after a failed job.
  std::atomic<int> again{0};
  pool.parallel_for(32, [&](std::size_t) {
    again.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), 32);
}

TEST(WorkerPoolTest, SerialPathPropagatesExceptions) {
  WorkerPool pool(0);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t i) {
        if (i == 2) throw Error("serial boom");
      }),
      Error);
}

// --- cancellation edge cases (DESIGN.md §12) --------------------------------
//
// The idg-server creates a per-job CancelToken at ADMISSION, so these
// edges are load-bearing there: a zero deadline means "no deadline", an
// already-expired deadline must throw at the very first check site (the
// job is cancelled before it ever starts — see the server's
// deadline-while-queued test), and request_cancel must be safe against a
// CancelScope tearing down concurrently on another thread.

TEST(CancelTokenTest, ZeroDeadlineNeverExpires) {
  idg::CancelToken token(0);
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("test.site"));
  // Explicit cancellation still works on a deadline-free token.
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check("test.site"), idg::CancelledError);
}

TEST(CancelTokenTest, AlreadyPastDeadlineThrowsAtFirstCheckByName) {
  idg::CancelToken token(1);
  EXPECT_TRUE(token.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  try {
    token.check("test.queued", 7);
    FAIL() << "an expired deadline must throw at the first check";
  } catch (const idg::CancelledError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadline of 1 ms exceeded"), std::string::npos)
        << what;
    EXPECT_NE(what.find("test.queued"), std::string::npos) << what;
    EXPECT_NE(what.find("work group 7"), std::string::npos) << what;
  }
  // A deadline crossing is latched: it stays cancelled forever.
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check("test.queued"), idg::CancelledError);
}

TEST(CancelTokenTest, RequestCancelIsIdempotentAndSticky) {
  idg::CancelToken token;
  token.request_cancel();
  token.request_cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelScopeTest, CancelRacingScopeTeardownIsSafe) {
  // One thread hammers request_cancel + any_cancel_requested while another
  // registers and unregisters scopes for the same token — the exact race
  // between a job thread finishing (scope teardown) and the server's drain
  // (request_cancel from the event loop).
  idg::CancelToken token;
  std::atomic<bool> stop{false};
  std::thread canceller([&]() {
    do {  // at least one cancel, even if the scope loop already finished
      token.request_cancel();
      (void)idg::any_cancel_requested();
    } while (!stop.load(std::memory_order_acquire));
  });
  for (int i = 0; i < 2000; ++i) {
    idg::CancelScope scope(token);
    // The registry observes the (always-cancelled) token while registered.
  }
  stop.store(true, std::memory_order_release);
  canceller.join();
  EXPECT_TRUE(token.cancelled());
  {
    idg::CancelScope scope(token);
    EXPECT_TRUE(idg::any_cancel_requested());
  }
  // After every scope is gone, the registry is empty again.
  EXPECT_FALSE(idg::any_cancel_requested());
}

TEST(CancelScopeTest, NestedScopesUnregisterInAnyOrderSafely) {
  idg::CancelToken outer;
  idg::CancelToken inner;
  {
    idg::CancelScope a(outer);
    {
      idg::CancelScope b(inner);
      inner.request_cancel();
      EXPECT_TRUE(idg::any_cancel_requested());
    }
    // inner unregistered; outer is live but not cancelled.
    EXPECT_FALSE(idg::any_cancel_requested());
    outer.request_cancel();
    EXPECT_TRUE(idg::any_cancel_requested());
  }
  EXPECT_FALSE(idg::any_cancel_requested());
}

}  // namespace
