// Unit and property tests for the FFT substrate (src/fft).
//
// Ground truth is the O(n^2) naive DFT. Tolerances scale with transform
// length because rounding error grows ~ O(sqrt(log n)) per butterfly level.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>
#include <vector>

#include "fft/fft.hpp"

namespace {

using idg::fft::Direction;
using idg::fft::Plan;
using idg::fft::Plan2D;
using idg::fft::Workspace;

std::vector<std::complex<float>> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<std::complex<float>> x(n);
  for (auto& v : x) v = {dist(rng), dist(rng)};
  return x;
}

double max_abs_error(const std::vector<std::complex<float>>& a,
                     const std::vector<std::complex<float>>& b) {
  EXPECT_EQ(a.size(), b.size());
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    err = std::max(err, static_cast<double>(std::abs(a[i] - b[i])));
  return err;
}

double tolerance(std::size_t n) { return 2e-5 * std::sqrt(static_cast<double>(n)) * std::max(1.0, std::log2(static_cast<double>(n))); }

// ---------------------------------------------------------------------------
// Parameterized over transform length: smooth sizes, primes (Bluestein),
// and the sizes the pipelines actually use (24, 32, 48, 2048, ...).
class Fft1DSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1DSizes, ForwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 42 + static_cast<unsigned>(n));
  auto expected = idg::fft::naive_dft(x, Direction::Forward);

  Plan<float> plan(n, Direction::Forward);
  Workspace<float> ws;
  std::vector<std::complex<float>> out(n);
  plan.execute(x.data(), 1, out.data(), ws);

  EXPECT_LT(max_abs_error(out, expected), tolerance(n)) << "n=" << n;
}

TEST_P(Fft1DSizes, BackwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 1000 + static_cast<unsigned>(n));
  auto expected = idg::fft::naive_dft(x, Direction::Backward);

  Plan<float> plan(n, Direction::Backward);
  Workspace<float> ws;
  std::vector<std::complex<float>> out(n);
  plan.execute(x.data(), 1, out.data(), ws);

  EXPECT_LT(max_abs_error(out, expected), tolerance(n)) << "n=" << n;
}

TEST_P(Fft1DSizes, RoundTripIsIdentityUpToScale) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 7 + static_cast<unsigned>(n));

  Plan<float> fwd(n, Direction::Forward);
  Plan<float> bwd(n, Direction::Backward);
  Workspace<float> ws;
  std::vector<std::complex<float>> mid(n), back(n);
  fwd.execute(x.data(), 1, mid.data(), ws);
  bwd.execute(mid.data(), 1, back.data(), ws);

  for (auto& v : back) v /= static_cast<float>(n);
  EXPECT_LT(max_abs_error(back, x), tolerance(n)) << "n=" << n;
}

TEST_P(Fft1DSizes, ParsevalEnergyConservation) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 99 + static_cast<unsigned>(n));

  Plan<float> fwd(n, Direction::Forward);
  Workspace<float> ws;
  std::vector<std::complex<float>> out(n);
  fwd.execute(x.data(), 1, out.data(), ws);

  double e_time = 0.0, e_freq = 0.0;
  for (auto v : x) e_time += std::norm(std::complex<double>(v));
  for (auto v : out) e_freq += std::norm(std::complex<double>(v));
  e_freq /= static_cast<double>(n);
  EXPECT_NEAR(e_freq, e_time, 1e-3 * e_time + 1e-6) << "n=" << n;
}

TEST_P(Fft1DSizes, InplaceMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 5 + static_cast<unsigned>(n));

  Plan<float> plan(n, Direction::Forward);
  Workspace<float> ws;
  std::vector<std::complex<float>> out(n);
  plan.execute(x.data(), 1, out.data(), ws);

  auto inplace = x;
  plan.execute_inplace(inplace.data(), ws);
  EXPECT_LT(max_abs_error(inplace, out), 1e-6) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Fft1DSizes,
    ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 16, 20, 21, 24,
                      25, 27, 32, 35, 48, 49, 64, 96, 100, 105, 128, 240, 256,
                      // primes and prime-ish sizes exercise Bluestein:
                      11, 13, 17, 31, 97, 101, 211,
                      // pipeline sizes:
                      512, 1024, 2048));

// ---------------------------------------------------------------------------

TEST(Fft1D, LinearityHolds) {
  const std::size_t n = 48;
  auto x = random_signal(n, 1);
  auto y = random_signal(n, 2);
  const std::complex<float> alpha{0.7f, -1.3f};

  Plan<float> plan(n, Direction::Forward);
  Workspace<float> ws;
  std::vector<std::complex<float>> fx(n), fy(n), fz(n), z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + alpha * y[i];
  plan.execute(x.data(), 1, fx.data(), ws);
  plan.execute(y.data(), 1, fy.data(), ws);
  plan.execute(z.data(), 1, fz.data(), ws);

  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(fz[i] - (fx[i] + alpha * fy[i])), 1e-4f);
}

TEST(Fft1D, DeltaTransformsToConstant) {
  const std::size_t n = 24;
  std::vector<std::complex<float>> x(n, {0.0f, 0.0f});
  x[0] = {1.0f, 0.0f};

  Plan<float> plan(n, Direction::Forward);
  Workspace<float> ws;
  std::vector<std::complex<float>> out(n);
  plan.execute(x.data(), 1, out.data(), ws);
  for (auto v : out) EXPECT_LT(std::abs(v - std::complex<float>{1.0f, 0.0f}), 1e-5f);
}

TEST(Fft1D, SingleToneLandsOnOneBin) {
  const std::size_t n = 32;
  const std::size_t k0 = 5;
  std::vector<std::complex<float>> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(k0 * j) /
                         static_cast<double>(n);
    x[j] = {static_cast<float>(std::cos(angle)),
            static_cast<float>(std::sin(angle))};
  }
  Plan<float> plan(n, Direction::Forward);
  Workspace<float> ws;
  std::vector<std::complex<float>> out(n);
  plan.execute(x.data(), 1, out.data(), ws);
  for (std::size_t k = 0; k < n; ++k) {
    const float expected = k == k0 ? static_cast<float>(n) : 0.0f;
    EXPECT_NEAR(std::abs(out[k]), expected, 2e-4f) << "bin " << k;
  }
}

TEST(Fft1D, StridedInputReadsCorrectElements) {
  const std::size_t n = 24, stride = 3;
  auto packed = random_signal(n, 12);
  std::vector<std::complex<float>> strided(n * stride, {-99.0f, -99.0f});
  for (std::size_t i = 0; i < n; ++i) strided[i * stride] = packed[i];

  Plan<float> plan(n, Direction::Forward);
  Workspace<float> ws;
  std::vector<std::complex<float>> a(n), b(n);
  plan.execute(packed.data(), 1, a.data(), ws);
  plan.execute(strided.data(), stride, b.data(), ws);
  EXPECT_LT(max_abs_error(a, b), 1e-6);
}

TEST(Fft1D, ThrowsOnZeroLength) {
  EXPECT_THROW(Plan<float>(0, Direction::Forward), idg::Error);
}

TEST(Fft1D, DoublePrecisionIsMoreAccurate) {
  const std::size_t n = 101;  // Bluestein path
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {dist(rng), dist(rng)};

  auto expected = idg::fft::naive_dft(x, Direction::Forward);
  Plan<double> plan(n, Direction::Forward);
  Workspace<double> ws;
  std::vector<std::complex<double>> out(n);
  plan.execute(x.data(), 1, out.data(), ws);

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(out[i] - expected[i]));
  EXPECT_LT(err, 1e-10);
}

// ---------------------------------------------------------------------------

class Fft2DSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Fft2DSizes, MatchesRowColumnNaiveDft) {
  const auto [rows, cols] = GetParam();
  auto x = random_signal(rows * cols, 17);

  // Ground truth: naive DFT on rows, then on columns.
  std::vector<std::complex<float>> expected = x;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::complex<float>> row(expected.begin() + r * cols,
                                         expected.begin() + (r + 1) * cols);
    auto t = idg::fft::naive_dft(row, Direction::Forward);
    std::copy(t.begin(), t.end(), expected.begin() + r * cols);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<std::complex<float>> col(rows);
    for (std::size_t r = 0; r < rows; ++r) col[r] = expected[r * cols + c];
    auto t = idg::fft::naive_dft(col, Direction::Forward);
    for (std::size_t r = 0; r < rows; ++r) expected[r * cols + c] = t[r];
  }

  Plan2D<float> plan(rows, cols, Direction::Forward);
  Workspace<float> ws;
  auto data = x;
  plan.execute_inplace(data.data(), ws);
  EXPECT_LT(max_abs_error(data, expected), tolerance(rows * cols));
}

TEST_P(Fft2DSizes, RoundTrip) {
  const auto [rows, cols] = GetParam();
  auto x = random_signal(rows * cols, 23);

  Plan2D<float> fwd(rows, cols, Direction::Forward);
  Plan2D<float> bwd(rows, cols, Direction::Backward);
  Workspace<float> ws;
  auto data = x;
  fwd.execute_inplace(data.data(), ws);
  bwd.execute_inplace(data.data(), ws);
  const float scale = 1.0f / static_cast<float>(rows * cols);
  for (auto& v : data) v *= scale;
  EXPECT_LT(max_abs_error(data, x), tolerance(rows * cols));
}

using Dims = std::pair<std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(Sizes, Fft2DSizes,
                         ::testing::Values(Dims{1, 1}, Dims{2, 2}, Dims{4, 4},
                                           Dims{8, 8}, Dims{24, 24},
                                           Dims{32, 32}, Dims{48, 48},
                                           Dims{64, 64}, Dims{16, 24},
                                           Dims{5, 7}, Dims{128, 128}));

// ---------------------------------------------------------------------------

TEST(FftShift, EvenSizeIsInvolution) {
  const std::size_t n = 24;
  auto x = random_signal(n * n, 31);
  auto y = x;
  idg::fft::fftshift2d(y.data(), n, n, +1);
  EXPECT_NE(max_abs_error(x, y), 0.0);  // actually moved something
  idg::fft::fftshift2d(y.data(), n, n, +1);
  EXPECT_EQ(max_abs_error(x, y), 0.0);
}

TEST(FftShift, OddSizeForwardBackwardCancel) {
  const std::size_t n = 5;
  auto x = random_signal(n * n, 37);
  auto y = x;
  idg::fft::fftshift2d(y.data(), n, n, +1);
  idg::fft::fftshift2d(y.data(), n, n, -1);
  EXPECT_EQ(max_abs_error(x, y), 0.0);
}

TEST(FftShift, MovesCenterToOrigin) {
  const std::size_t n = 8;
  std::vector<std::complex<float>> x(n * n, {0.0f, 0.0f});
  x[(n / 2) * n + (n / 2)] = {1.0f, 0.0f};
  idg::fft::fftshift2d(x.data(), n, n, +1);
  EXPECT_FLOAT_EQ(x[0].real(), 1.0f);
}

}  // namespace
