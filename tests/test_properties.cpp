// Property-based tests sweeping the IDG configuration space: the
// gridder/degridder adjointness and coverage invariants must hold for every
// subgrid size, kernel margin, channel count and frequency layout — not
// just the defaults the other suites use.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>
#include <tuple>

#include "idg/kernels.hpp"
#include "idg/parameters.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/taper.hpp"
#include "kernels/optimized.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;

// (subgrid_size, kernel_size, nr_channels, max_timesteps)
using Config = std::tuple<std::size_t, std::size_t, int, int>;

class AdjointSweep : public ::testing::TestWithParam<Config> {};

TEST_P(AdjointSweep, GridDegridAdjointnessHolds) {
  const auto [subgrid, kernel_size, channels, tmax] = GetParam();

  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 5;
  cfg.nr_timesteps = 24;
  cfg.nr_channels = channels;
  cfg.grid_size = 256;
  cfg.subgrid_size = subgrid;
  auto ds = sim::make_benchmark_dataset_no_vis(cfg);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = subgrid;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = kernel_size;
  params.max_timesteps_per_subgrid = tmax;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations, subgrid);

  Processor proc(params);
  std::mt19937 rng(static_cast<unsigned>(subgrid * 1000 + channels));
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);

  Array3D<Visibility> vis(ds.nr_baselines(), ds.nr_timesteps(),
                          ds.nr_channels());
  for (auto& v : vis)
    v = {{dist(rng), dist(rng)},
         {dist(rng), dist(rng)},
         {dist(rng), dist(rng)},
         {dist(rng), dist(rng)}};
  Array3D<cfloat> g(4, params.grid_size, params.grid_size);
  for (auto& x : g) x = {dist(rng), dist(rng)};

  Array3D<cfloat> gv(4, params.grid_size, params.grid_size);
  proc.grid_visibilities(plan, ds.uvw.cview(), vis.cview(), aterms.cview(),
                         gv.view());
  Array3D<Visibility> gtg(ds.nr_baselines(), ds.nr_timesteps(),
                          ds.nr_channels());
  proc.degrid_visibilities(plan, ds.uvw.cview(), g.cview(), aterms.cview(),
                           gtg.view());

  std::complex<double> lhs{}, rhs{};
  for (std::size_t i = 0; i < g.size(); ++i)
    lhs += std::conj(std::complex<double>(gv.data()[i])) *
           std::complex<double>(g.data()[i]);
  for (std::size_t i = 0; i < vis.size(); ++i)
    for (int p = 0; p < kNrPolarizations; ++p)
      rhs += std::conj(std::complex<double>(vis.data()[i][p])) *
             std::complex<double>(gtg.data()[i][p]);

  const double scale = std::max({1.0, std::abs(lhs), std::abs(rhs)});
  EXPECT_NEAR(lhs.real(), rhs.real(), 3e-3 * scale)
      << "subgrid=" << subgrid << " kernel=" << kernel_size;
  EXPECT_NEAR(lhs.imag(), rhs.imag(), 3e-3 * scale)
      << "subgrid=" << subgrid << " kernel=" << kernel_size;
}

TEST_P(AdjointSweep, PlanCoversAllVisibilitiesOnce) {
  const auto [subgrid, kernel_size, channels, tmax] = GetParam();

  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 6;
  cfg.nr_timesteps = 48;
  cfg.nr_channels = channels;
  cfg.grid_size = 256;
  cfg.subgrid_size = subgrid;
  auto ds = sim::make_benchmark_dataset_no_vis(cfg);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = subgrid;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = kernel_size;
  params.max_timesteps_per_subgrid = tmax;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);

  Array3D<int> covered(ds.nr_baselines(), ds.nr_timesteps(),
                       ds.nr_channels());
  for (const WorkItem& item : plan.items()) {
    EXPECT_LE(item.nr_timesteps, tmax);
    for (int t = 0; t < item.nr_timesteps; ++t)
      for (int c = 0; c < item.nr_channels; ++c)
        covered(static_cast<std::size_t>(item.baseline),
                static_cast<std::size_t>(item.time_begin + t),
                static_cast<std::size_t>(item.channel_begin + c)) += 1;
  }
  std::size_t covered_count = 0;
  for (const int v : covered) {
    EXPECT_LE(v, 1);
    covered_count += static_cast<std::size_t>(v);
  }
  EXPECT_EQ(covered_count, plan.nr_planned_visibilities());
  EXPECT_EQ(covered_count + plan.nr_dropped_visibilities(),
            ds.nr_visibilities());
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, AdjointSweep,
    ::testing::Values(Config{8, 2, 2, 16}, Config{16, 4, 4, 32},
                      Config{16, 8, 3, 8}, Config{24, 8, 8, 64},
                      Config{24, 12, 5, 128}, Config{32, 16, 4, 32},
                      Config{48, 16, 2, 16}, Config{20, 6, 7, 24}));

// --- wide-bandwidth channel splitting -----------------------------------------

TEST(ChannelSplitTest, WideBandForcesChannelGroups) {
  // A 2:1 frequency ratio makes the radial channel spread at long
  // baselines exceed the subgrid capacity: the plan must split channels
  // into groups (the paper's "create a new subgrid to cover the remaining
  // channels").
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 8;
  cfg.nr_timesteps = 32;
  cfg.nr_channels = 16;
  cfg.grid_size = 512;
  cfg.subgrid_size = 16;
  auto ds = sim::make_benchmark_dataset_no_vis(cfg);
  // Stretch the band: 100..200 MHz.
  ds.obs.channel_width_hz = 100e6 / 16;
  for (int c = 0; c < 16; ++c)
    ds.frequencies[static_cast<std::size_t>(c)] = ds.obs.frequency(c);
  // Refit the FOV for the doubled top frequency.
  ds.image_size = sim::fit_image_size(ds.uvw, ds.obs, ds.grid_size);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = 8;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);

  bool any_split = false;
  for (const WorkItem& item : plan.items()) {
    EXPECT_GE(item.nr_channels, 1);
    EXPECT_LE(item.channel_begin + item.nr_channels, 16);
    if (item.nr_channels < 16) any_split = true;
  }
  EXPECT_TRUE(any_split) << "expected at least one channel-split work item";
  EXPECT_EQ(plan.nr_dropped_visibilities(), 0u);

  // Coverage still exact despite splitting.
  Array3D<int> covered(ds.nr_baselines(), ds.nr_timesteps(),
                       ds.nr_channels());
  for (const WorkItem& item : plan.items())
    for (int t = 0; t < item.nr_timesteps; ++t)
      for (int c = 0; c < item.nr_channels; ++c)
        covered(static_cast<std::size_t>(item.baseline),
                static_cast<std::size_t>(item.time_begin + t),
                static_cast<std::size_t>(item.channel_begin + c)) += 1;
  for (const int v : covered) EXPECT_EQ(v, 1);
}

// --- single-visibility property over random geometry ----------------------------

TEST(SingleVisibilityProperty, EnergyConservedThroughGridding) {
  // Gridding a single visibility deposits exactly the taper kernel into
  // the grid: total grid "flux" (sum over the patch) equals the visibility
  // value times the taper DC response, independent of where in the plan it
  // lands. Sweep random uv positions.
  std::mt19937 rng(99);
  std::uniform_real_distribution<float> pos(-40.0f, 40.0f);

  Parameters params;
  params.grid_size = 128;
  params.subgrid_size = 16;
  params.image_size = 0.05;
  params.nr_stations = 2;
  params.kernel_size = 4;
  auto aterms = sim::make_identity_aterms(1, 2, params.subgrid_size);
  const double freq = 150e6;
  const double lambda = kSpeedOfLight / freq;
  Processor proc(params);

  // Taper DC response (sum over pixels / N^2 equals mean).
  double taper_mean = 0.0;
  for (const float t : proc.taper()) taper_mean += t;
  taper_mean /= static_cast<double>(proc.taper().size());

  std::vector<Baseline> baselines = {{0, 1}};
  for (int trial = 0; trial < 10; ++trial) {
    Array2D<UVW> uvw(1, 1);
    uvw(0, 0) = {static_cast<float>(pos(rng) / params.image_size * lambda),
                 static_cast<float>(pos(rng) / params.image_size * lambda),
                 0.0f};
    Plan plan(params, uvw, {freq}, baselines);
    ASSERT_EQ(plan.nr_subgrids(), 1u);

    Array3D<Visibility> vis(1, 1, 1);
    const cfloat value{1.5f, -0.5f};
    vis(0, 0, 0) = {value, value, value, value};

    Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
    proc.grid_visibilities(plan, uvw.cview(), vis.cview(), aterms.cview(),
                           grid.view());

    std::complex<double> total{};
    for (std::size_t y = 0; y < params.grid_size; ++y)
      for (std::size_t x = 0; x < params.grid_size; ++x)
        total += std::complex<double>(grid(0, y, x));
    // Sum over the patch of the taper kernel = taper at the image centre
    // pixel... summing DFT bins returns the image-domain value at l = 0
    // times N^2 * (1/N^2) = taper(center) * V.
    EXPECT_NEAR(std::abs(total - std::complex<double>(value)), 0.0, 5e-3)
        << "trial " << trial;
  }
}

// --- optimized kernels across the sweep ------------------------------------------

class KernelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelSweep, OptimizedMatchesReferenceForSubgridSize) {
  const std::size_t subgrid = GetParam();
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  cfg.nr_timesteps = 16;
  cfg.nr_channels = 3;
  cfg.grid_size = 256;
  cfg.subgrid_size = subgrid;
  auto ds = sim::make_benchmark_dataset(cfg);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = subgrid;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = std::max<std::size_t>(2, subgrid / 4);
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations, subgrid);
  auto taper = make_taper(subgrid);
  KernelData data{ds.uvw.cview(), plan.wavenumbers(), aterms.cview(),
                  taper.cview()};

  Array4D<cfloat> ref(plan.nr_subgrids(), 4, subgrid, subgrid);
  Array4D<cfloat> opt(plan.nr_subgrids(), 4, subgrid, subgrid);
  reference_kernels().grid(params, data, plan.items(),
                           ds.visibilities.cview(), ref.view());
  kernels::optimized_kernels().grid(params, data, plan.items(),
                                    ds.visibilities.cview(), opt.view());

  double max_err = 0.0, max_val = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::abs(
                                    ref.data()[i] - opt.data()[i])));
    max_val = std::max(max_val, static_cast<double>(std::abs(ref.data()[i])));
  }
  EXPECT_LT(max_err, 5e-3 * std::max(max_val, 1.0)) << "subgrid " << subgrid;
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelSweep,
                         ::testing::Values(8, 12, 16, 20, 24, 32, 48));

}  // namespace
