// Tests for W-stacking (w-plane model, plan integration, stacked
// gridding/degridding) and for the triple-buffered pipelined executor.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "idg/image.hpp"
#include "idg/pipelined.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/wplane.hpp"
#include "idg/wstack.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"

namespace {

using namespace idg;

// --- WPlaneModel ---------------------------------------------------------------

TEST(WPlaneModelTest, SinglePlaneIsAtZero) {
  WPlaneModel m(1, 500.0);
  EXPECT_EQ(m.plane_of(-400.0), 0);
  EXPECT_EQ(m.plane_of(400.0), 0);
  EXPECT_FLOAT_EQ(m.center(0), 0.0f);
}

TEST(WPlaneModelTest, CentersSpanSymmetricRange) {
  WPlaneModel m(5, 100.0);
  EXPECT_FLOAT_EQ(m.center(0), -100.0f);
  EXPECT_FLOAT_EQ(m.center(2), 0.0f);
  EXPECT_FLOAT_EQ(m.center(4), 100.0f);
}

TEST(WPlaneModelTest, PlaneOfPicksNearestCenter) {
  WPlaneModel m(5, 100.0);  // centers at -100, -50, 0, 50, 100
  EXPECT_EQ(m.plane_of(-80.0), 0);
  EXPECT_EQ(m.plane_of(-60.0), 1);
  EXPECT_EQ(m.plane_of(10.0), 2);
  EXPECT_EQ(m.plane_of(95.0), 4);
  EXPECT_EQ(m.plane_of(1e9), 4);   // clamped
  EXPECT_EQ(m.plane_of(-1e9), 0);  // clamped
}

TEST(WPlaneModelTest, ResidualBoundHolds) {
  WPlaneModel m(9, 400.0);
  EXPECT_DOUBLE_EQ(m.max_residual(), 50.0);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-400.0, 400.0);
  for (int i = 0; i < 1000; ++i) {
    const double w = dist(rng);
    const int p = m.plane_of(w);
    EXPECT_LE(std::abs(w - m.center(p)), m.max_residual() * 1.0001);
  }
}

TEST(WPlaneModelTest, FitCoversDataset) {
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 8;
  cfg.nr_timesteps = 16;
  auto ds = sim::make_benchmark_dataset_no_vis(cfg);
  auto m = WPlaneModel::fit(8, ds.uvw, ds.frequencies);
  EXPECT_EQ(m.nr_planes(), 8);
  const double f_max = ds.frequencies.back();
  for (const UVW& c : ds.uvw) {
    EXPECT_LE(std::abs(c.w) * f_max / kSpeedOfLight, m.w_max());
  }
}

TEST(WPlaneModelTest, InvalidArgumentsThrow) {
  EXPECT_THROW(WPlaneModel(0, 10.0), Error);
  EXPECT_THROW(WPlaneModel(4, -1.0), Error);
  WPlaneModel m(2, 10.0);
  EXPECT_THROW(m.center(2), Error);
}

// --- fixture with artificially inflated w --------------------------------------

struct WStackFixture {
  sim::Dataset ds;
  Parameters params;
  sim::ATermCube aterms;

  /// `w_scale` multiplies every w coordinate, pushing the w-term support
  /// beyond the subgrid margin so plain IDG degrades and stacking matters.
  static WStackFixture make(float w_scale) {
    sim::BenchmarkConfig cfg;
    cfg.nr_stations = 6;
    cfg.nr_timesteps = 32;
    cfg.nr_channels = 4;
    cfg.grid_size = 256;
    cfg.subgrid_size = 32;
    auto ds = sim::make_benchmark_dataset_no_vis(cfg);
    for (UVW& c : ds.uvw) c.w *= w_scale;

    Parameters params;
    params.grid_size = cfg.grid_size;
    params.subgrid_size = cfg.subgrid_size;
    params.image_size = ds.image_size;
    params.nr_stations = cfg.nr_stations;
    params.kernel_size = 16;
    auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                            cfg.subgrid_size);
    return {std::move(ds), params, std::move(aterms)};
  }

  double degrid_error(const WPlaneModel& wplanes) const {
    const double dl = params.image_size / static_cast<double>(params.grid_size);
    sim::SkyModel sky = {
        sim::PointSource{static_cast<float>(40 * dl),
                         static_cast<float>(-35 * dl), 1.0f}};
    auto expected =
        sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs);
    auto model = sim::render_sky_image(sky, params.grid_size,
                                       params.image_size);

    WStackProcessor proc(params, wplanes);
    Plan plan = proc.make_plan(ds.uvw, ds.frequencies, ds.baselines);
    auto grids = proc.model_image_to_grids(model);
    Array3D<Visibility> predicted(ds.nr_baselines(), ds.nr_timesteps(),
                                  ds.nr_channels());
    proc.degrid_visibilities(plan, ds.uvw.cview(), grids.cview(),
                             aterms.cview(), predicted.view());
    return sim::max_abs_difference(expected, predicted) /
           sim::rms_amplitude(expected);
  }
};

// --- plan integration -------------------------------------------------------------

TEST(WStackPlanTest, ItemsCarryPlaneAssignments) {
  auto f = WStackFixture::make(1.0f);
  WPlaneModel wplanes = WPlaneModel::fit(8, f.ds.uvw, f.ds.frequencies);
  WStackProcessor proc(f.params, wplanes);
  Plan plan = proc.make_plan(f.ds.uvw, f.ds.frequencies, f.ds.baselines);

  bool any_nonzero_plane = false;
  for (const WorkItem& item : plan.items()) {
    EXPECT_GE(item.w_plane, 0);
    EXPECT_LT(item.w_plane, wplanes.nr_planes());
    EXPECT_FLOAT_EQ(item.w_offset, wplanes.center(item.w_plane));
    if (item.w_plane != 0) any_nonzero_plane = true;
  }
  EXPECT_TRUE(any_nonzero_plane);
}

TEST(WStackPlanTest, SinglePlanePlanHasZeroOffsets) {
  auto f = WStackFixture::make(1.0f);
  Plan plan(f.params, f.ds.uvw, f.ds.frequencies, f.ds.baselines);
  for (const WorkItem& item : plan.items()) {
    EXPECT_EQ(item.w_plane, 0);
    EXPECT_FLOAT_EQ(item.w_offset, 0.0f);
  }
}

// --- stacked pipelines -------------------------------------------------------------

TEST(WStackTest, SinglePlaneMatchesPlainProcessor) {
  auto f = WStackFixture::make(1.0f);
  const double dl = f.params.image_size / static_cast<double>(f.params.grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(12 * dl),
                                        static_cast<float>(9 * dl), 1.0f}};
  auto vis = sim::predict_visibilities(sky, f.ds.uvw, f.ds.baselines, f.ds.obs);

  // Plain processor.
  Plan plain_plan(f.params, f.ds.uvw, f.ds.frequencies, f.ds.baselines);
  Processor plain(f.params);
  Array3D<cfloat> grid(4, f.params.grid_size, f.params.grid_size);
  plain.grid_visibilities(plain_plan, f.ds.uvw.cview(), vis.cview(),
                          f.aterms.cview(), grid.view());
  auto image_plain =
      make_dirty_image(grid, plain_plan.nr_planned_visibilities());

  // Single-plane stack.
  WStackProcessor stacked(f.params, WPlaneModel(1, 0.0));
  Plan stack_plan = stacked.make_plan(f.ds.uvw, f.ds.frequencies,
                                      f.ds.baselines);
  auto grids = stacked.make_grids();
  stacked.grid_visibilities(stack_plan, f.ds.uvw.cview(), vis.cview(),
                            f.aterms.cview(), grids.view());
  auto image_stack = stacked.make_dirty_image(
      grids.cview(), stack_plan.nr_planned_visibilities());

  double max_err = 0.0;
  for (std::size_t i = 0; i < image_plain.size(); ++i) {
    max_err = std::max(max_err,
                       static_cast<double>(std::abs(
                           image_plain.data()[i] - image_stack.data()[i])));
  }
  EXPECT_LT(max_err, 1e-5);
}

TEST(WStackTest, StackingRescuesLargeWDegridding) {
  auto f = WStackFixture::make(60.0f);  // brutal w inflation
  const double err_plain = f.degrid_error(WPlaneModel(1, 0.0));
  const double err_stacked =
      f.degrid_error(WPlaneModel::fit(16, f.ds.uvw, f.ds.frequencies));
  // Plain IDG's subgrid can no longer contain the w-term support; stacking
  // must recover at least a 3x accuracy improvement and reach a usable
  // error level.
  EXPECT_GT(err_plain, 0.08) << "w inflation too weak for this test";
  EXPECT_LT(err_stacked, err_plain / 3.0);
  EXPECT_LT(err_stacked, 0.05);
}

TEST(WStackTest, MorePlanesMonotonicallyImproveAccuracy) {
  auto f = WStackFixture::make(60.0f);
  const double e1 = f.degrid_error(WPlaneModel::fit(2, f.ds.uvw, f.ds.frequencies));
  const double e2 = f.degrid_error(WPlaneModel::fit(8, f.ds.uvw, f.ds.frequencies));
  const double e3 = f.degrid_error(WPlaneModel::fit(24, f.ds.uvw, f.ds.frequencies));
  EXPECT_GT(e1, e2);
  EXPECT_GT(e2, e3 * 0.999);
}

TEST(WStackTest, GridRoundtripRecoversPointSource) {
  auto f = WStackFixture::make(30.0f);
  WPlaneModel wplanes = WPlaneModel::fit(12, f.ds.uvw, f.ds.frequencies);
  WStackProcessor proc(f.params, wplanes);
  Plan plan = proc.make_plan(f.ds.uvw, f.ds.frequencies, f.ds.baselines);

  const double dl = f.params.image_size / static_cast<double>(f.params.grid_size);
  const int px = 30, py = -25;
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(px * dl),
                                        static_cast<float>(py * dl), 1.5f}};
  auto vis = sim::predict_visibilities(sky, f.ds.uvw, f.ds.baselines, f.ds.obs);

  auto grids = proc.make_grids();
  proc.grid_visibilities(plan, f.ds.uvw.cview(), vis.cview(),
                         f.aterms.cview(), grids.view());
  auto image =
      proc.make_dirty_image(grids.cview(), plan.nr_planned_visibilities());

  const std::size_t cx = f.params.grid_size / 2 + px;
  const std::size_t cy = f.params.grid_size / 2 + py;
  EXPECT_NEAR(image(0, cy, cx).real(), 1.5f, 0.08f);
}

// --- pipelined executor -------------------------------------------------------------

TEST(PipelinedTest, MatchesSynchronousProcessorExactly) {
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 8;
  cfg.nr_timesteps = 64;
  cfg.nr_channels = 4;
  cfg.grid_size = 256;
  cfg.subgrid_size = 24;
  auto ds = sim::make_benchmark_dataset(cfg);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = 8;
  params.work_group_size = 4;  // force several in-flight work groups
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  EXPECT_GT(plan.nr_work_groups(), 3u);
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                          cfg.subgrid_size);

  Processor sync(params);
  Array3D<cfloat> grid_sync(4, params.grid_size, params.grid_size);
  sync.grid_visibilities(plan, ds.uvw.cview(), ds.visibilities.cview(),
                         aterms.cview(), grid_sync.view());

  PipelinedGridder async(params, reference_kernels(), 3);
  Array3D<cfloat> grid_async(4, params.grid_size, params.grid_size);
  obs::AggregateSink sink;
  async.grid_visibilities(plan, ds.uvw.cview(), ds.visibilities.cview(),
                          aterms.cview(), grid_async.view(), sink);

  // Same kernels, same group order, same accumulation order: bit-identical.
  for (std::size_t i = 0; i < grid_sync.size(); ++i) {
    EXPECT_EQ(grid_sync.data()[i], grid_async.data()[i]) << "pixel " << i;
    if (grid_sync.data()[i] != grid_async.data()[i]) break;
  }
  EXPECT_GT(sink.seconds(stage::kGridder), 0.0);
  EXPECT_GT(sink.seconds(stage::kAdder), 0.0);
}

TEST(PipelinedTest, WorksWithMoreBuffersThanGroups) {
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 4;
  cfg.nr_timesteps = 8;
  cfg.nr_channels = 2;
  cfg.grid_size = 128;
  cfg.subgrid_size = 16;
  auto ds = sim::make_benchmark_dataset(cfg);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = 4;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                          cfg.subgrid_size);

  PipelinedGridder async(params, reference_kernels(), 8);
  Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
  async.grid_visibilities(plan, ds.uvw.cview(), ds.visibilities.cview(),
                          aterms.cview(), grid.view());
  double total = 0.0;
  for (const auto& v : grid) total += std::abs(v);
  EXPECT_GT(total, 0.0);
}

TEST(PipelinedTest, DegridderMatchesSynchronousProcessorExactly) {
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = 8;
  cfg.nr_timesteps = 64;
  cfg.nr_channels = 4;
  cfg.grid_size = 256;
  cfg.subgrid_size = 24;
  auto ds = sim::make_benchmark_dataset(cfg);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = 8;
  params.work_group_size = 4;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                          cfg.subgrid_size);

  // A non-trivial grid to degrid from.
  Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : grid) v = {dist(rng), dist(rng)};

  Processor sync(params);
  Array3D<Visibility> vis_sync(ds.nr_baselines(), ds.nr_timesteps(),
                               ds.nr_channels());
  sync.degrid_visibilities(plan, ds.uvw.cview(), grid.cview(),
                           aterms.cview(), vis_sync.view());

  PipelinedDegridder async(params, reference_kernels(), 3);
  Array3D<Visibility> vis_async(ds.nr_baselines(), ds.nr_timesteps(),
                                ds.nr_channels());
  obs::AggregateSink sink;
  async.degrid_visibilities(plan, ds.uvw.cview(), grid.cview(),
                            aterms.cview(), vis_async.view(), sink);

  for (std::size_t i = 0; i < vis_sync.size(); ++i) {
    for (int p = 0; p < kNrPolarizations; ++p) {
      ASSERT_EQ(vis_sync.data()[i][p], vis_async.data()[i][p])
          << "sample " << i << " pol " << p;
    }
  }
  EXPECT_GT(sink.seconds(stage::kDegridder), 0.0);
  EXPECT_GT(sink.seconds(stage::kSplitter), 0.0);
  EXPECT_GT(sink.seconds(stage::kSubgridFft), 0.0);
}

TEST(PipelinedTest, RejectsSingleBuffer) {
  Parameters params;
  params.grid_size = 128;
  params.subgrid_size = 16;
  params.image_size = 0.01;
  params.nr_stations = 2;
  EXPECT_THROW(PipelinedGridder(params, reference_kernels(), 1), Error);
  EXPECT_THROW(PipelinedDegridder(params, reference_kernels(), 1), Error);
}

}  // namespace
