// Regenerates Fig 8: the (u,v)-plane coverage of the SKA1-low-like test
// data set — as an ASCII density plot plus radial coverage statistics.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/types.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  auto setup = bench::make_setup(opts, /*fill_visibilities=*/false);
  bench::print_header("Fig 8: (u,v)-plane of the test data set", setup);

  const auto& ds = setup.dataset;
  const std::size_t g = setup.params.grid_size;

  // Density of uv samples on the grid raster (all channels).
  std::vector<std::uint32_t> density(g * g, 0);
  std::size_t total = 0;
  for (std::size_t b = 0; b < ds.nr_baselines(); ++b) {
    for (std::size_t t = 0; t < ds.nr_timesteps(); ++t) {
      const UVW& c = ds.uvw(b, t);
      for (std::size_t ch = 0; ch < ds.nr_channels(); ++ch) {
        const double scale =
            ds.frequencies[ch] / kSpeedOfLight * ds.image_size;
        const long x = std::lround(c.u * scale) + static_cast<long>(g) / 2;
        const long y = std::lround(c.v * scale) + static_cast<long>(g) / 2;
        if (x >= 0 && y >= 0 && x < static_cast<long>(g) &&
            y < static_cast<long>(g)) {
          ++density[static_cast<std::size_t>(y) * g +
                    static_cast<std::size_t>(x)];
          ++total;
        }
      }
    }
  }

  // ASCII downsample to 48x48.
  const std::size_t cells = 48;
  std::cout << "uv density (" << cells << "x" << cells << " downsample; "
            << "' .:+#@' = increasing sample count):\n\n";
  const char* shades = " .:+#@";
  for (std::size_t cy = 0; cy < cells; ++cy) {
    std::cout << "  ";
    for (std::size_t cx = 0; cx < cells; ++cx) {
      std::uint64_t sum = 0;
      for (std::size_t y = cy * g / cells; y < (cy + 1) * g / cells; ++y)
        for (std::size_t x = cx * g / cells; x < (cx + 1) * g / cells; ++x)
          sum += density[y * g + x];
      const int level =
          sum == 0 ? 0 : std::min<int>(5, 1 + static_cast<int>(std::log10(static_cast<double>(sum))));
      std::cout << shades[level];
    }
    std::cout << '\n';
  }

  // Radial statistics: fraction of samples and of covered cells per annulus.
  std::cout << "\nradial uv statistics:\n\n";
  Table table({"radius (cells)", "samples", "sample %", "covered cells %"});
  const std::size_t nr_bins = 8;
  std::size_t covered_total = 0;
  for (std::size_t bin = 0; bin < nr_bins; ++bin) {
    const double r0 = static_cast<double>(bin) * (static_cast<double>(g) / 2) / nr_bins;
    const double r1 = static_cast<double>(bin + 1) * (static_cast<double>(g) / 2) / nr_bins;
    std::uint64_t samples = 0, covered = 0, cells_in_annulus = 0;
    for (std::size_t y = 0; y < g; ++y) {
      for (std::size_t x = 0; x < g; ++x) {
        const double r = std::hypot(static_cast<double>(x) - g / 2.0,
                                    static_cast<double>(y) - g / 2.0);
        if (r < r0 || r >= r1) continue;
        ++cells_in_annulus;
        samples += density[y * g + x];
        if (density[y * g + x] > 0) ++covered;
      }
    }
    covered_total += covered;
    table.row()
        .add(std::to_string(static_cast<int>(r0)) + "-" +
             std::to_string(static_cast<int>(r1)))
        .add(static_cast<std::uint64_t>(samples))
        .add(100.0 * static_cast<double>(samples) / std::max<std::size_t>(total, 1), 2)
        .add(100.0 * static_cast<double>(covered) /
                 std::max<std::uint64_t>(cells_in_annulus, 1),
             2);
  }
  table.print(std::cout);
  std::cout << "\ntotal samples on grid: " << total
            << ", uv coverage (non-zero cells): "
            << 100.0 * static_cast<double>(covered_total) / (g * g) << " %\n"
            << "expected shape: dense core (inner annuli) with coverage "
               "falling off along the spiral arms, as in the paper's Fig 8.\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
