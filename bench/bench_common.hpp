// Shared harness for the per-figure bench binaries.
//
// Every bench accepts the same scaling knobs (DESIGN.md §7):
//   --stations N --time T --channels C --grid G --subgrid S
//   --aterm-interval A --kernel-size K --paper --csv <path>
// plus IDG_BENCH_* environment equivalents. Defaults are sized to finish in
// seconds on a single core; --paper selects the full 2017 configuration.
//
// Benches that measure pipeline stages additionally accept
//   --backend <name>   execution backend (idg::make_backend names)
//   --json <path>      per-stage metrics in the idg-obs/v6 JSON schema
//   --trace <path>     Chrome-trace/Perfetto event timeline (also enabled
//                      by the IDG_TRACE environment variable; load the file
//                      at ui.perfetto.dev or chrome://tracing)
//   --hw               sample hardware perf_event counters per stage
//                      (DESIGN.md §15); degrades with a printed note when
//                      the host masks counter access — never fails the run
//   --sorted | --unsorted   plan tile-locality ordering ablation (default
//                      sorted; grids are bit-identical, only adder locality
//                      changes)
//   --tile-size N      adder tile side in grid pixels (multiple of 8)
//   --flag-fraction F  mark ~F of the samples RFI-flagged (deterministic)
//   --bad-policy P     reject | zero_and_continue | skip_work_group
//                      (Parameters::bad_sample_policy, DESIGN.md §11)
//   --retries N        wrap the backend in the resilient supervisor: up to
//                      N failed attempts per work group before quarantine
//                      (DESIGN.md §12)
//   --deadline-ms D    abort the run with a CancelledError after D ms
//                      (Parameters::deadline_ms; 0 = no deadline)
//   --checkpoint P     major-cycle binaries: snapshot loop state to P after
//                      each completed cycle (IDGCKPT1, clean/major_cycle.hpp)
//   --resume P         major-cycle binaries: restart from the snapshot at P
// so downstream plotting reads one stable schema instead of scraping
// per-bench table formats. parse_bench_options() rejects unknown and
// duplicate options, reporting every problem in one error.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/report.hpp"
#include "idg/backend.hpp"
#include "kernels/autotune.hpp"
#include "kernels/optimized.hpp"
#include "idg/supervisor.hpp"
#include "idg/parameters.hpp"
#include "idg/plan.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/perfcounters.hpp"
#include "obs/trace.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace idg::bench {

struct BenchSetup {
  sim::BenchmarkConfig config;
  sim::Dataset dataset;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;
};

/// The union of every option any bench binary understands. One shared
/// catalogue (common/cli.hpp, also used by the examples) so
/// parse_bench_options() can reject typos: an option not in the catalogue
/// aborts the run with a descriptive error instead of being silently
/// ignored, and a flag declared once (e.g. --epsilon, --sweep) is known to
/// benches and examples alike.
inline const std::vector<std::string>& known_bench_options() {
  return standard_option_catalogue();
}

/// Parses argv with the shared option catalogue: unknown options and
/// duplicates are rejected (all problems reported in one idg::Error).
inline Options parse_bench_options(int argc, const char* const* argv) {
  return parse_standard_options(argc, argv);
}

inline sim::BenchmarkConfig config_from_options(const Options& opts) {
  sim::BenchmarkConfig cfg =
      opts.flag("paper") ? sim::BenchmarkConfig::paper() : sim::BenchmarkConfig{};
  cfg.nr_stations = static_cast<int>(opts.get("stations", static_cast<long>(cfg.nr_stations)));
  cfg.nr_timesteps = static_cast<int>(opts.get("time", static_cast<long>(cfg.nr_timesteps)));
  cfg.nr_channels = static_cast<int>(opts.get("channels", static_cast<long>(cfg.nr_channels)));
  cfg.grid_size = static_cast<std::size_t>(opts.get("grid", static_cast<long>(cfg.grid_size)));
  cfg.subgrid_size = static_cast<std::size_t>(opts.get("subgrid", static_cast<long>(cfg.subgrid_size)));
  cfg.aterm_interval = static_cast<int>(opts.get("aterm-interval", static_cast<long>(cfg.aterm_interval)));
  return cfg;
}

inline Parameters params_from(const sim::BenchmarkConfig& cfg,
                              const sim::Dataset& ds, const Options& opts) {
  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = static_cast<std::size_t>(opts.get("kernel-size", 8L));
  params.aterm_interval = cfg.aterm_interval;
  params.max_timesteps_per_subgrid =
      static_cast<int>(opts.get("max-timesteps", 128L));
  // --sorted / --unsorted ablation of the plan's tile-locality ordering
  // (sorted is the default; results are bit-identical either way, only the
  // adder's access locality changes).
  params.plan_ordering = opts.flag("unsorted") ? PlanOrdering::kArrival
                                               : PlanOrdering::kTileSorted;
  params.adder_tile_size =
      static_cast<std::size_t>(opts.get("tile-size", 64L));
  // --bad-policy reject|zero_and_continue|skip_work_group (DESIGN.md §11).
  const std::string policy =
      opts.get("bad-policy", std::string(to_string(params.bad_sample_policy)));
  const auto parsed = bad_sample_policy_from_string(policy);
  if (!parsed) {
    throw Error("--bad-policy: unknown policy '" + policy +
                "' (expected reject, zero_and_continue or skip_work_group)");
  }
  params.bad_sample_policy = *parsed;
  // --deadline-ms D aborts the run with a CancelledError once D ms have
  // elapsed (0 = no deadline, DESIGN.md §12).
  params.deadline_ms =
      static_cast<std::uint32_t>(opts.get("deadline-ms", 0L));
  // --epsilon E requests an accuracy contract: auto_configure() picks the
  // taper, kernel size, subgrid padding and accumulation precision for the
  // requested error (DESIGN.md §13). Applied last so the derived
  // configuration wins over the explicit --kernel-size/--subgrid knobs.
  if (opts.has("epsilon")) {
    params.auto_configure(opts.get("epsilon", 1e-3));
  }
  return params;
}

/// Builds the full setup: dataset, plan and identity A-terms (the paper's
/// benchmark configuration).
inline BenchSetup make_setup(const Options& opts, bool fill_visibilities = true) {
  sim::BenchmarkConfig cfg = config_from_options(opts);
  sim::Dataset ds = fill_visibilities
                        ? sim::make_benchmark_dataset(cfg)
                        : sim::make_benchmark_dataset_no_vis(cfg);
  Parameters params = params_from(cfg, ds, opts);
  // --flag-fraction F marks ~F of the samples as RFI-flagged (deterministic
  // from the dataset seed), exercising the bad-sample policy end to end.
  const double flag_fraction = opts.get("flag-fraction", 0.0);
  if (flag_fraction > 0.0) {
    const std::uint64_t flagged =
        sim::apply_rfi_flags(ds, flag_fraction, cfg.seed);
    std::cout << "   flagged " << flagged << " of " << ds.nr_visibilities()
              << " samples (policy: " << to_string(params.bad_sample_policy)
              << ")\n";
  }
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  const int nr_slots =
      (cfg.nr_timesteps + cfg.aterm_interval - 1) / cfg.aterm_interval;
  // A-terms live on the subgrid raster: params.subgrid_size, not the cfg
  // knob (--epsilon's science tier pads the subgrid past it).
  sim::ATermCube aterms = sim::make_identity_aterms(
      nr_slots, cfg.nr_stations, params.subgrid_size);
  return {cfg, std::move(ds), params, std::move(plan), std::move(aterms)};
}

inline void print_header(const std::string& title, const BenchSetup& setup) {
  std::cout << "== " << title << " ==\n"
            << "   dataset: " << setup.config.describe() << "\n"
            << "   subgrids: " << setup.plan.nr_subgrids()
            << ", visibilities: " << setup.plan.nr_planned_visibilities()
            << " (dropped: " << setup.plan.nr_dropped_visibilities() << ")"
            << ", avg vis/subgrid: " << setup.plan.avg_visibilities_per_subgrid()
            << "\n\n";
}

inline void maybe_write_csv(const Table& table, const Options& opts) {
  if (opts.has("csv")) {
    const std::string path = opts.get("csv", std::string{});
    table.write_csv(path);
    std::cout << "\n(wrote " << path << ")\n";
  }
}

/// Writes the per-stage metrics snapshot as idg-obs/v6 JSON when --json
/// <path> was given.
inline void maybe_write_json(const obs::MetricsSnapshot& snapshot,
                             const Options& opts) {
  if (opts.has("json")) {
    const std::string path = opts.get("json", std::string{});
    obs::write_json_file(path, snapshot);
    std::cout << "\n(wrote " << path << ")\n";
  }
}

/// Splits a comma-separated --candidates list.
inline std::vector<std::string> split_comma_list(const std::string& list) {
  std::vector<std::string> out;
  std::string item;
  for (char c : list) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

/// Translates the shared tuning knobs (--warmup, --repeats, --candidates)
/// into AutotuneOptions.
inline kernels::AutotuneOptions autotune_options_from(const Options& opts) {
  kernels::AutotuneOptions tune;
  tune.warmup = static_cast<int>(opts.get("warmup", static_cast<long>(tune.warmup)));
  tune.repeats =
      static_cast<int>(opts.get("repeats", static_cast<long>(tune.repeats)));
  if (opts.has("candidates"))
    tune.candidates = split_comma_list(opts.get("candidates", std::string{}));
  return tune;
}

/// Resolves the kernel set a bench runs: --kernel-set NAME (or the legacy
/// --kernels NAME) selects a registry entry, default "optimized". With
/// --tune, the autotuner first benchmarks the candidate family on this
/// setup's (subgrid_size, nr_channels, nr_stations) shape with min-of-N
/// discipline, persists the winners into the tuning database (--tune-db
/// PATH, default the per-host cache file) and the run proceeds with the
/// "tuned" dispatch consulting that database.
inline const KernelSet& kernel_set_from_options(const Options& opts,
                                                const Parameters& params,
                                                std::size_t nr_channels) {
  if (opts.flag("tune")) {
    const std::string db_path =
        opts.get("tune-db", kernels::default_tuning_database_path());
    kernels::TuningDatabase db;
    try {
      db = kernels::TuningDatabase::load(db_path);
    } catch (const Error&) {
      // Missing or unusable database: start fresh.
    }
    const auto results =
        kernels::autotune(db, params, nr_channels, autotune_options_from(opts));
    db.save(db_path);
    kernels::reload_process_tuning_database(db_path);
    for (const kernels::AutotuneResult& r : results) {
      std::cout << "   tuned " << to_string(r.entry.op) << ": "
                << r.entry.kernel_set << " (" << r.entry.speedup()
                << "x optimized)\n";
    }
    std::cout << "   (tuning database: " << db_path << ")\n";
    return kernels::kernel_set("tuned");
  }
  std::string name = opts.get("kernel-set", std::string{});
  if (name.empty()) name = opts.get("kernels", std::string("optimized"));
  return kernels::kernel_set(name);
}

/// Trace output path: --trace <path> (or IDG_BENCH_TRACE) first, then the
/// dedicated IDG_TRACE environment variable; empty = tracing disabled.
inline std::string trace_path_from_options(const Options& opts) {
  std::string path = opts.get("trace", std::string{});
  if (path.empty()) {
    if (const char* env = std::getenv("IDG_TRACE")) path = env;
  }
  return path;
}

/// RAII activation of timeline tracing for a bench run: installs the
/// global TraceSink when a trace path was configured (no-op otherwise) and
/// writes the Chrome-trace JSON on destruction. Construct BEFORE creating
/// backends so queues/pools latch the sink at instrument() time.
class TraceGuard {
 public:
  explicit TraceGuard(const Options& opts)
      : session_(trace_path_from_options(opts)) {}
  ~TraceGuard() {
    if (session_.enabled()) {
      std::cout << "\n(wrote trace " << session_.path() << ")\n";
    }
  }
  bool enabled() const { return session_.enabled(); }

 private:
  obs::TraceSession session_;
};

/// RAII activation of per-stage hardware counters for a bench run
/// (--hw, DESIGN.md §15): opens a PerfCounterSession and installs it as
/// the global session so every obs::Span attributes counter deltas to its
/// stage. When the host refuses (perf_event_paranoid, seccomp, non-Linux
/// build) the guard prints why and the run continues with analytic counts
/// only — counters never fail a bench. Construct BEFORE creating backends
/// so pipeline stage threads warm their counter groups at startup.
class PerfGuard {
 public:
  explicit PerfGuard(const Options& opts) {
    if (!opts.flag("hw")) return;
    std::string why;
    session_ = obs::PerfCounterSession::open(&why);
    if (session_ == nullptr) {
      std::cout << "   (hw counters unavailable: " << why
                << " — continuing with analytic counts only)\n";
      return;
    }
    obs::set_global_perf_session(session_.get());
    std::cout << "   hw counters: " << session_->counter_list()
              << " (perf_event_paranoid=" << session_->paranoid_level()
              << ")\n";
  }
  ~PerfGuard() {
    if (session_ != nullptr) obs::set_global_perf_session(nullptr);
  }
  bool live() const { return session_ != nullptr; }

  PerfGuard(const PerfGuard&) = delete;
  PerfGuard& operator=(const PerfGuard&) = delete;

 private:
  std::unique_ptr<obs::PerfCounterSession> session_;
};

/// Translates --backend/--retries into a BackendOptions struct: the
/// backend spec is parsed by idg::parse_backend_spec and --retries N sets
/// a SupervisorConfig with N attempts per work group (for a non-resilient
/// executor this wraps it in the supervisor, DESIGN.md §12; spell
/// --backend resilient[:inner] instead to get the default policy).
inline BackendOptions backend_options_from(const Options& opts,
                                           const KernelSet& kernels) {
  const std::string name = opts.get("backend", std::string("synchronous"));
  BackendOptions options = parse_backend_spec(name);
  options.kernels = &kernels;
  const long retries = opts.get("retries", 0L);
  if (retries > 0) {
    IDG_CHECK(options.executor != "resilient",
              "--retries cannot rewrap --backend " << name
                                                   << "; it is already "
                                                      "supervised");
    SupervisorConfig config;
    config.max_attempts_per_group = static_cast<std::uint32_t>(retries);
    options.supervisor = config;
  }
  return options;
}

/// Creates the execution backend selected by --backend (default:
/// synchronous), with --retries N wrapping non-resilient selections in the
/// resilient supervisor. The KernelSet must outlive the returned backend.
inline std::unique_ptr<GridderBackend> backend_from_options(
    const Options& opts, const Parameters& params, const KernelSet& kernels) {
  return make_backend(backend_options_from(opts, kernels), params);
}

}  // namespace idg::bench
