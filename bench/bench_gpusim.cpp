// GPU execution simulation: cross-validates the closed-form roofline model
// (Figs 10-11) with the block-level discrete simulator, and reproduces the
// triple-buffering overlap of Fig 7.
#include <iostream>

#include "arch/gpusim.hpp"
#include "arch/machine.hpp"
#include "arch/roofline.hpp"
#include "bench_common.hpp"
#include "idg/accounting.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  auto setup = bench::make_setup(opts, /*fill_visibilities=*/false);
  bench::print_header("GPU execution simulation (model cross-validation)",
                      setup);

  const OpCounts gridder = gridder_op_counts(setup.plan);
  const OpCounts degridder = degridder_op_counts(setup.plan);

  Table table({"device", "kernel", "sim TOps/s", "model TOps/s",
               "sim/model", "bottleneck", "fma util", "sfu util",
               "shared util"});
  auto add = [&](const arch::GpuSimConfig& sim_cfg, const arch::Machine& m,
                 const char* kernel, const OpCounts& counts, bool degrid) {
    const auto r = degrid ? arch::simulate_degridder(sim_cfg, setup.plan)
                          : arch::simulate_gridder(sim_cfg, setup.plan);
    const double model = arch::modeled_ops_per_second(m, counts);
    table.row()
        .add(sim_cfg.name)
        .add(kernel)
        .add(r.ops_per_second / 1e12, 2)
        .add(model / 1e12, 2)
        .add(r.ops_per_second / model, 2)
        .add(r.bottleneck)
        .add(r.fma_utilization, 2)
        .add(r.sfu_utilization, 2)
        .add(r.shared_utilization, 2);
  };
  add(arch::pascal_sim(), arch::pascal(), "gridder", gridder, false);
  add(arch::pascal_sim(), arch::pascal(), "degridder", degridder, true);
  add(arch::fiji_sim(), arch::fiji(), "gridder", gridder, false);
  add(arch::fiji_sim(), arch::fiji(), "degridder", degridder, true);
  table.print(std::cout);

  // Fig 7: triple buffering.
  std::cout << "\ntriple-buffered pipeline (Fig 7), gridding path:\n\n";
  Table pipe({"device", "kernel (s)", "transfers (s)", "wall (s)",
              "overlap gain"});
  for (const auto& cfg : {arch::pascal_sim(), arch::fiji_sim()}) {
    const auto r = arch::simulate_triple_buffering(cfg, setup.plan);
    pipe.row()
        .add(cfg.name)
        .add(r.kernel_seconds, 5)
        .add(r.transfer_seconds, 5)
        .add(r.wall_seconds, 5)
        .add(r.overlap_efficiency, 2);
  }
  pipe.print(std::cout);
  std::cout << "\nexpected shape: simulator within tens of percent of the "
               "closed-form model; PASCAL shared-memory-bound, FIJI "
               "ALU-bound; transfers largely hidden behind kernel "
               "execution (paper Fig 7).\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
