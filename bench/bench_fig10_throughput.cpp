// Regenerates Fig 10: gridding and degridding throughput in MVisibilities/s
// per architecture (host measured; 2017 machines modeled).
//
// Expected shape: both GPUs almost an order of magnitude above the CPU.
#include <iostream>

#include "arch/cyclemodel.hpp"
#include "arch/machine.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts(argc, argv);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 10: gridding/degridding throughput", setup);

  const KernelSet& kernels =
      kernels::kernel_set(opts.get("kernels", std::string("optimized")));
  Processor proc(setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);

  // Measured: gridding path (gridder + subgrid FFT + adder) and degridding
  // path (splitter + subgrid FFT + degridder).
  StageTimes grid_times, degrid_times;
  proc.grid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                         setup.dataset.visibilities.cview(),
                         setup.aterms.cview(), grid.view(), &grid_times);
  proc.degrid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                           grid.cview(), setup.aterms.cview(),
                           setup.dataset.visibilities.view(), &degrid_times);

  const double nvis =
      static_cast<double>(setup.plan.nr_planned_visibilities());

  Table table({"architecture", "gridding (MVis/s)", "degridding (MVis/s)"});
  table.row()
      .add("HOST (measured, " + kernels.name() + ")")
      .add(nvis / grid_times.total() / 1e6, 3)
      .add(nvis / degrid_times.total() / 1e6, 3);

  for (const auto& machine : arch::paper_machines()) {
    const auto model = arch::model_imaging_cycle(machine, setup.plan);
    table.row()
        .add(machine.name + " (modeled)")
        .add(model.gridding_vis_per_second() / 1e6, 1)
        .add(model.degridding_vis_per_second() / 1e6, 1);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: GPUs ~an order of magnitude above the "
               "CPU (paper Fig 10).\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
