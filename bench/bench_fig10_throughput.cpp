// Regenerates Fig 10: gridding and degridding throughput in MVisibilities/s
// per architecture (host measured; 2017 machines modeled).
//
// The measured numbers come from two obs::AggregateSinks (one per
// direction) fed by the selected backend (--backend synchronous|pipelined);
// --json <path> exports the combined per-stage metrics (idg-obs/v6).
//
// Expected shape: both GPUs almost an order of magnitude above the CPU.
#include <iostream>

#include "arch/cyclemodel.hpp"
#include "arch/machine.hpp"
#include "bench_common.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"
#include "obs/sink.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 10: gridding/degridding throughput", setup);

  const KernelSet& kernels = bench::kernel_set_from_options(
      opts, setup.params, static_cast<std::size_t>(setup.config.nr_channels));
  auto backend = bench::backend_from_options(opts, setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);

  // Measured: gridding path (gridder + subgrid FFT + adder) and degridding
  // path (splitter + subgrid FFT + degridder).
  obs::AggregateSink grid_sink, degrid_sink;
  backend->grid(setup.plan, setup.dataset.uvw.cview(),
                setup.dataset.visibilities.cview(),
                setup.dataset.flag_view(), setup.aterms.cview(),
                grid.view(), grid_sink);
  backend->degrid(setup.plan, setup.dataset.uvw.cview(), grid.cview(),
                  setup.dataset.flag_view(), setup.aterms.cview(),
                  setup.dataset.visibilities.view(),
                  degrid_sink);

  const double nvis =
      static_cast<double>(setup.plan.nr_planned_visibilities());

  Table table({"architecture", "gridding (MVis/s)", "degridding (MVis/s)"});
  table.row()
      .add("HOST (measured, " + kernels.name() + ", " + backend->name() + ")")
      .add(nvis / grid_sink.total_seconds() / 1e6, 3)
      .add(nvis / degrid_sink.total_seconds() / 1e6, 3);

  for (const auto& machine : arch::paper_machines()) {
    const auto model = arch::model_imaging_cycle(machine, setup.plan);
    table.row()
        .add(machine.name + " (modeled)")
        .add(model.gridding_vis_per_second() / 1e6, 1)
        .add(model.degridding_vis_per_second() / 1e6, 1);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: GPUs ~an order of magnitude above the "
               "CPU (paper Fig 10).\n";
  std::cout << "adder: " << grid_sink.seconds(stage::kAdder)
            << " s, splitter: " << degrid_sink.seconds(stage::kSplitter)
            << " s, plan "
            << (setup.params.plan_ordering == PlanOrdering::kTileSorted
                    ? "tile-sorted"
                    : "arrival-ordered")
            << ", tile " << setup.params.adder_tile_size
            << " px (ablate with --sorted/--unsorted)\n";
  bench::maybe_write_csv(table, opts);

  obs::AggregateSink combined;
  combined.merge(grid_sink.snapshot());
  combined.merge(degrid_sink.snapshot());
  bench::maybe_write_json(combined.snapshot(), opts);
  return 0;
}
