// Ablation: W-stacking (paper §III/§IV/§VI-E).
//
// Sweeps the number of w-planes for an observation whose w coordinates are
// inflated until plain IDG's subgrid can no longer contain the w-term
// support, and reports degridding accuracy and runtime per plane count —
// the trade the paper describes as "larger subgrids ... in connection with
// W-stacking to dramatically limit the number of required W-planes".
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/wstack.hpp"
#include "kernels/optimized.hpp"
#include "sim/predict.hpp"
#include "sim/skymodel.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  auto setup = bench::make_setup(opts, /*fill_visibilities=*/false);
  bench::print_header("Ablation: W-stacking plane count", setup);

  auto ds = setup.dataset;  // copy: we inflate w
  const float w_scale = static_cast<float>(opts.get("w-scale", 40.0));
  for (UVW& c : ds.uvw) c.w *= w_scale;

  const double dl =
      setup.params.image_size / static_cast<double>(setup.params.grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(40 * dl),
                                        static_cast<float>(-35 * dl), 1.0f}};
  auto expected = sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs);
  const double rms = sim::rms_amplitude(expected);
  auto model = sim::render_sky_image(sky, setup.params.grid_size,
                                     setup.params.image_size);

  Array3D<Visibility> predicted(ds.nr_baselines(), ds.nr_timesteps(),
                                ds.nr_channels());

  Table table({"w-planes", "max residual w (lambda)", "degrid err (rel)",
               "degrid (MVis/s)", "plane grids (MB)"});
  for (int planes : {1, 2, 4, 8, 16, 32}) {
    const WPlaneModel wplanes =
        planes == 1 ? WPlaneModel(1, 0.0)
                    : WPlaneModel::fit(planes, ds.uvw, ds.frequencies);
    WStackProcessor proc(setup.params, wplanes,
                         kernels::optimized_kernels());
    Plan plan = proc.make_plan(ds.uvw, ds.frequencies, ds.baselines);
    auto grids = proc.model_image_to_grids(model);

    Timer timer;
    proc.degrid_visibilities(plan, ds.uvw.cview(), grids.cview(),
                             setup.aterms.cview(), predicted.view());
    const double seconds = timer.seconds();
    const double err = sim::max_abs_difference(expected, predicted) / rms;
    table.row()
        .add(planes)
        .add(wplanes.max_residual(), 1)
        .add(err, 5)
        .add(static_cast<double>(plan.nr_planned_visibilities()) / seconds /
                 1e6,
             3)
        .add(static_cast<double>(grids.bytes()) / 1e6, 1);
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: accuracy improves steeply with the first "
               "few planes, then saturates; kernel runtime is flat (the "
               "stacking cost is per-plane grids and FFTs, the trade the "
               "paper highlights against W-projection's kernel storage).\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
