// Regenerates Fig 9: the distribution of runtime over the pipeline stages
// for one full imaging cycle (gridding + degridding with all supporting
// steps), measured on this host and modeled for the paper's three machines.
//
// Expected shape (paper §VI-B): "For all architectures, runtime is
// dominated by the gridder and degridder kernels (more than 93%)."
#include <iostream>

#include "arch/cyclemodel.hpp"
#include "arch/machine.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/image.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts(argc, argv);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 9: runtime distribution of one imaging cycle",
                      setup);

  const std::vector<std::string> stages = {
      stage::kGridder, stage::kDegridder, stage::kSubgridFft, stage::kAdder,
      stage::kSplitter, stage::kGridFft};

  // --- measured on this host ------------------------------------------------
  const KernelSet& kernels =
      kernels::kernel_set(opts.get("kernels", std::string("optimized")));
  Processor proc(setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);

  StageTimes times;
  proc.grid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                         setup.dataset.visibilities.cview(),
                         setup.aterms.cview(), grid.view(), &times);
  {
    ScopedStageTimer t(times, stage::kGridFft);
    auto dirty = make_dirty_image(grid, setup.plan.nr_planned_visibilities());
    (void)dirty;
    auto model_grid = model_image_to_grid(dirty);
    (void)model_grid;
  }
  proc.degrid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                           grid.cview(), setup.aterms.cview(),
                           setup.dataset.visibilities.view(), &times);

  Table table({"architecture", "stage", "seconds", "% of cycle", "bar"});
  const double host_total = times.total();
  for (const auto& s : stages) {
    table.row()
        .add("HOST (measured)")
        .add(s)
        .add(times.get(s), 4)
        .add(100.0 * times.get(s) / host_total, 1)
        .add(ascii_bar(times.get(s) / host_total, 30));
  }

  // --- modeled for the paper's machines ---------------------------------------
  for (const auto& machine : arch::paper_machines()) {
    const auto model = arch::model_imaging_cycle(machine, setup.plan);
    for (const auto& s : stages) {
      const double sec = model.stage(s).seconds;
      table.row()
          .add(machine.name + " (modeled)")
          .add(s)
          .add(sec, 4)
          .add(100.0 * sec / model.total_seconds, 1)
          .add(ascii_bar(sec / model.total_seconds, 30));
    }
  }
  table.print(std::cout);

  const double kernel_frac =
      (times.get(stage::kGridder) + times.get(stage::kDegridder)) /
      host_total;
  std::cout << "\nhost cycle total: " << host_total << " s; gridder+degridder"
            << " = " << 100.0 * kernel_frac
            << " % (paper: >93 % on all architectures)\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
