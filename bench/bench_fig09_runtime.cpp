// Regenerates Fig 9: the distribution of runtime over the pipeline stages
// for one full imaging cycle (gridding + degridding with all supporting
// steps), measured on this host and modeled for the paper's three machines.
//
// The measured breakdown comes from the observability layer: the selected
// backend (--backend synchronous|pipelined) records every stage span into
// an obs::AggregateSink, and --json <path> exports the per-stage metrics in
// the stable idg-obs/v6 schema.
//
// Expected shape (paper §VI-B): "For all architectures, runtime is
// dominated by the gridder and degridder kernels (more than 93%)."
#include <iostream>

#include "arch/cyclemodel.hpp"
#include "arch/machine.hpp"
#include "bench_common.hpp"
#include "idg/image.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 9: runtime distribution of one imaging cycle",
                      setup);

  const std::vector<std::string> stages = {
      stage::kGridder, stage::kDegridder, stage::kSubgridFft, stage::kAdder,
      stage::kSplitter, stage::kGridFft};

  // --- measured on this host ------------------------------------------------
  const KernelSet& kernels = bench::kernel_set_from_options(
      opts, setup.params, static_cast<std::size_t>(setup.config.nr_channels));
  auto backend = bench::backend_from_options(opts, setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);

  obs::AggregateSink sink;
  backend->grid(setup.plan, setup.dataset.uvw.cview(),
                setup.dataset.visibilities.cview(),
                setup.dataset.flag_view(), setup.aterms.cview(),
                grid.view(), sink);
  {
    obs::Span span(sink, stage::kGridFft);
    auto dirty = make_dirty_image(grid, setup.plan.nr_planned_visibilities());
    (void)dirty;
    auto model_grid = model_image_to_grid(dirty);
    (void)model_grid;
  }
  backend->degrid(setup.plan, setup.dataset.uvw.cview(), grid.cview(),
                  setup.dataset.flag_view(), setup.aterms.cview(),
                  setup.dataset.visibilities.view(),
                  sink);

  const obs::MetricsSnapshot metrics = sink.snapshot();
  const double host_total = obs::total_seconds(metrics);
  const auto stage_seconds = [&](const std::string& s) {
    auto it = metrics.find(s);
    return it == metrics.end() ? 0.0 : it->second.seconds;
  };

  Table table({"architecture", "stage", "seconds", "% of cycle", "bar"});
  for (const auto& s : stages) {
    const double sec = stage_seconds(s);
    table.row()
        .add("HOST (measured, " + backend->name() + ")")
        .add(s)
        .add(sec, 4)
        .add(100.0 * sec / host_total, 1)
        .add(ascii_bar(sec / host_total, 30));
  }

  // --- modeled for the paper's machines ---------------------------------------
  for (const auto& machine : arch::paper_machines()) {
    const auto model = arch::model_imaging_cycle(machine, setup.plan);
    for (const auto& s : stages) {
      const double sec = model.stage(s).seconds;
      table.row()
          .add(machine.name + " (modeled)")
          .add(s)
          .add(sec, 4)
          .add(100.0 * sec / model.total_seconds, 1)
          .add(ascii_bar(sec / model.total_seconds, 30));
    }
  }
  table.print(std::cout);

  const double kernel_frac =
      (stage_seconds(stage::kGridder) + stage_seconds(stage::kDegridder)) /
      host_total;
  std::cout << "\nhost cycle total: " << host_total << " s; gridder+degridder"
            << " = " << 100.0 * kernel_frac
            << " % (paper: >93 % on all architectures)\n";
  std::cout << "adder: " << stage_seconds(stage::kAdder) << " s, plan "
            << (setup.params.plan_ordering == PlanOrdering::kTileSorted
                    ? "tile-sorted"
                    : "arrival-ordered")
            << ", tile " << setup.params.adder_tile_size
            << " px (ablate with --sorted/--unsorted)\n";
  bench::maybe_write_csv(table, opts);
  bench::maybe_write_json(metrics, opts);
  return 0;
}
