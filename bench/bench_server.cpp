// Multi-tenant daemon throughput: how fast the idg-server admission queue
// and job executor push small imaging jobs end to end (DESIGN.md §17).
//
// Spins up an in-process Server on a temporary UNIX-domain socket, fires
// --jobs jobs from --tenants concurrent client threads (round-robin tenant
// names), waits for every terminal frame, then drains the server and
// reports jobs/s, visibilities/s, and the admission counters. Every job is
// the deterministic benchmark workload, so this measures the daemon
// machinery (framing, admission, scheduling, result shipping) on top of a
// known imaging cost — compare against a single-shot `imaging_cycle` run
// with the same knobs to see the daemon overhead.
//
//   bench_server [--tenants 3] [--jobs 6] [--max-running 2]
//                [--stations 8] [--time 24] [--channels 4] [--grid 128]
//                [--cycles 1] [--json metrics.json]
//
// --json writes the server's final idg-obs/v8 snapshot (the `server` and
// `server.tenant.*` blocks carry the admission/execution counters).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/report.hpp"
#include "obs/export.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  try {
    Options opts(argc, argv,
                 /*flag_names=*/{"help"},
                 /*known_options=*/
                 {"tenants", "jobs", "max-running", "stations", "time",
                  "channels", "grid", "cycles", "json"});
    if (opts.flag("help")) {
      std::cout << "usage: bench_server [--tenants N] [--jobs N]\n"
                   "  [--max-running N] [--stations N] [--time T]\n"
                   "  [--channels C] [--grid G] [--cycles N] [--json PATH]\n";
      return 0;
    }
    const long nr_tenants = opts.get("tenants", 3L);
    const long nr_jobs = opts.get("jobs", 6L);

    server::JobSpec spec;
    spec.nr_stations = static_cast<std::int32_t>(opts.get("stations", 8L));
    spec.nr_timesteps = static_cast<std::int32_t>(opts.get("time", 24L));
    spec.nr_channels = static_cast<std::int32_t>(opts.get("channels", 4L));
    spec.grid_size = static_cast<std::uint32_t>(opts.get("grid", 128L));
    spec.nr_cycles = static_cast<std::uint32_t>(opts.get("cycles", 1L));
    spec.validate();

    server::ServerConfig config;
    config.socket_path = "/tmp/idg_bench_server." +
                         std::to_string(::getpid()) + ".sock";
    config.max_running =
        static_cast<std::uint64_t>(opts.get("max-running", 2L));
    // The bench wants zero admission rejections: size the queue and quotas
    // to the offered load so every job's latency is measured, not retried.
    config.quotas.max_queue_depth = static_cast<std::uint64_t>(nr_jobs);
    config.quotas.max_inflight_per_tenant =
        static_cast<std::uint64_t>(nr_jobs);

    server::Server server(config);
    std::thread server_thread([&]() { server.run(); });
    while (::access(config.socket_path.c_str(), F_OK) != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    std::cout << "bench_server: " << nr_jobs << " job(s) from " << nr_tenants
              << " tenant(s), max-running " << config.max_running << ", "
              << spec.nr_visibilities() << " visibilities/job, "
              << spec.nr_cycles << " major cycle(s)/job\n";

    std::atomic<long> completed{0};
    std::atomic<long> failed{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (long t = 0; t < nr_tenants; ++t) {
      clients.emplace_back([&, t]() {
        // Tenant t submits jobs t, t + nr_tenants, ... sequentially on one
        // connection each (one job per connection, like idg-client).
        for (long j = t; j < nr_jobs; j += nr_tenants) {
          try {
            server::ClientOptions copts;
            copts.socket_path = config.socket_path;
            copts.tenant = "tenant" + std::to_string(t);
            server::Client client(copts);
            client.connect();
            const server::SubmitOutcome outcome = client.submit(spec);
            if (outcome.state == server::JobState::kCompleted) {
              completed.fetch_add(1, std::memory_order_relaxed);
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const Error& e) {
            failed.fetch_add(1, std::memory_order_relaxed);
            std::cerr << "bench_server: job failed: " << e.what() << "\n";
          }
        }
      });
    }
    for (auto& thread : clients) thread.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    server.request_stop();
    server_thread.join();

    const obs::MetricsSnapshot snapshot = server.metrics();
    if (opts.has("json")) {
      obs::write_json_file(opts.get("json", std::string{}), snapshot);
    }

    const double vis_total = static_cast<double>(spec.nr_visibilities()) *
                             static_cast<double>(completed.load());
    Table table({"metric", "value"});
    table.row().add("jobs completed").add(static_cast<double>(completed), 0);
    table.row().add("jobs failed").add(static_cast<double>(failed), 0);
    table.row().add("wall time (s)").add(seconds, 3);
    table.row().add("jobs/s").add(completed / seconds, 3);
    table.row()
        .add("MVis/s through the daemon")
        .add(vis_total / seconds / 1e6, 3);
    const auto it = snapshot.find("server");
    if (it != snapshot.end()) {
      table.row()
          .add("queue depth peak")
          .add(static_cast<double>(it->second.server.queue_depth_peak), 0);
    }
    table.print(std::cout);

    if (completed.load() != nr_jobs) {
      std::cerr << "bench_server: " << failed.load() << " of " << nr_jobs
                << " job(s) did not complete\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_server: " << e.what() << "\n";
    return 1;
  }
}
