// Epsilon sweep: achieved accuracy vs requested contract, per tier
// (DESIGN.md §13).
//
// For each requested epsilon the accuracy planner (auto_configure) derives
// a configuration; this bench measures what that configuration actually
// delivers — the dirty-image l2 error against a strided direct
// double-precision DFT of the same planned visibilities, the grid/degrid
// adjointness defect, and the gridding wall time — and FAILS (nonzero
// exit) if any achieved error exceeds its requested epsilon. CI runs it as
// an accuracy-labeled smoke test and uploads the JSON artifact.
//
//   --epsilon E   one sweep point (default 1e-3)
//   --sweep       the full ladder 1e-1 .. 1e-5
//   --backend B   execution backend (default synchronous)
//   --json PATH   write the sweep as idg-epsilon-sweep/v1 JSON
//   --csv PATH    write the result table as CSV
#include <cmath>
#include <complex>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <random>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/accuracy.hpp"
#include "idg/image.hpp"
#include "kernels/optimized.hpp"

namespace {

using namespace idg;

constexpr double kTwoPiD = 6.283185307179586476925286766559;

struct SweepPoint {
  double requested = 0.0;
  const char* tier = "";
  std::string kernels;
  std::size_t kernel_size = 0;
  std::size_t subgrid_size = 0;
  double achieved_l2 = 0.0;
  double achieved_adj = 0.0;
  double grid_seconds = 0.0;
  bool ok() const {
    return achieved_l2 <= requested && achieved_adj <= requested;
  }
};

/// Relative l2 error of `dirty` (pol 0) against a direct double DFT of the
/// planned visibilities, sampled on a strided raster of <= samples^2
/// pixels over the central half of the field (the contract region) so the
/// DFT cost stays bounded at large grids.
double strided_dft_l2(const Parameters& params, const sim::Dataset& ds,
                      const Array3D<Visibility>& vis, const Plan& plan,
                      const Array3D<cfloat>& dirty,
                      std::size_t samples = 32) {
  Array3D<int> covered(ds.nr_baselines(), ds.nr_timesteps(),
                       ds.nr_channels());
  for (const WorkItem& it : plan.items())
    for (int t = 0; t < it.nr_timesteps; ++t)
      for (int c = 0; c < it.nr_channels; ++c)
        covered(static_cast<std::size_t>(it.baseline),
                static_cast<std::size_t>(it.time_begin + t),
                static_cast<std::size_t>(it.channel_begin + c)) = 1;

  const std::size_t n = params.grid_size;
  const std::size_t lo = n / 4, hi = 3 * n / 4;
  const std::size_t stride = std::max<std::size_t>(1, (hi - lo) / samples);
  double num = 0.0, den = 0.0;
#pragma omp parallel for schedule(dynamic) reduction(+ : num, den)
  for (std::size_t y = lo; y < hi; y += stride) {
    const double m = (static_cast<double>(y) - n / 2.0) * params.image_size /
                     static_cast<double>(n);
    for (std::size_t x = lo; x < hi; x += stride) {
      const double l = (static_cast<double>(x) - n / 2.0) *
                       params.image_size / static_cast<double>(n);
      const double r2 = l * l + m * m;
      const double pn = r2 >= 1.0 ? 1.0 : 1.0 - std::sqrt(1.0 - r2);
      std::complex<double> ref{};
      for (std::size_t bl = 0; bl < ds.nr_baselines(); ++bl) {
        for (std::size_t t = 0; t < ds.nr_timesteps(); ++t) {
          const UVW& coord = ds.uvw(bl, t);
          const double base = static_cast<double>(coord.u) * l +
                              static_cast<double>(coord.v) * m +
                              static_cast<double>(coord.w) * pn;
          for (std::size_t c = 0; c < ds.nr_channels(); ++c) {
            if (!covered(bl, t, c)) continue;
            const double k = kTwoPiD * ds.frequencies[c] / kSpeedOfLight;
            ref += std::complex<double>(vis(bl, t, c).xx) *
                   std::complex<double>(std::cos(base * k),
                                        std::sin(base * k));
          }
        }
      }
      ref /= static_cast<double>(plan.nr_planned_visibilities());
      num += std::norm(std::complex<double>(dirty(0, y, x)) - ref);
      den += std::norm(ref);
    }
  }
  return std::sqrt(num / den);
}

SweepPoint run_point(double epsilon, const sim::BenchmarkConfig& base_cfg,
                     const Options& opts) {
  SweepPoint point;
  point.requested = epsilon;
  point.tier = accuracy::tier_for(epsilon).name;

  sim::BenchmarkConfig cfg = base_cfg;
  auto ds = sim::make_benchmark_dataset_no_vis(cfg);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.aterm_interval = cfg.aterm_interval;
  params.auto_configure(epsilon);
  point.kernel_size = params.kernel_size;
  point.subgrid_size = params.subgrid_size;

  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  const int nr_slots =
      (cfg.nr_timesteps + cfg.aterm_interval - 1) / cfg.aterm_interval;
  // Science-tier padding grows the subgrid: A-terms follow the params.
  auto aterms = sim::make_identity_aterms(nr_slots, cfg.nr_stations,
                                          params.subgrid_size);

  std::mt19937 rng(12345);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  Array3D<Visibility> vis(ds.nr_baselines(), ds.nr_timesteps(),
                          ds.nr_channels());
  for (auto& v : vis)
    v = {{dist(rng), dist(rng)},
         {dist(rng), dist(rng)},
         {dist(rng), dist(rng)},
         {dist(rng), dist(rng)}};

  // The tier's preferred kernel set (LUT sincos for preview, the
  // accumulation-honouring reference set for the tighter tiers).
  point.kernels = accuracy::preferred_kernel_set(params);
  const KernelSet& kernels = kernels::kernel_set(point.kernels);
  auto backend = bench::backend_from_options(opts, params, kernels);

  Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
  Timer timer;
  backend->grid(plan, ds.uvw.cview(), vis.cview(), aterms.cview(),
                grid.view());
  point.grid_seconds = timer.seconds();

  auto dirty = make_dirty_image(grid, plan.nr_planned_visibilities(), params);
  point.achieved_l2 = strided_dft_l2(params, ds, vis, plan, dirty);

  // Adjointness defect <grid(vis), g> vs <vis, degrid(g)>.
  Array3D<cfloat> g(4, params.grid_size, params.grid_size);
  for (auto& x : g) x = {dist(rng), dist(rng)};
  Array3D<Visibility> gtg(ds.nr_baselines(), ds.nr_timesteps(),
                          ds.nr_channels());
  for (auto& v : gtg) v = Visibility{};
  backend->degrid(plan, ds.uvw.cview(), g.cview(), aterms.cview(),
                  gtg.view());
  std::complex<double> lhs{}, rhs{};
  for (std::size_t i = 0; i < g.size(); ++i)
    lhs += std::conj(std::complex<double>(grid.data()[i])) *
           std::complex<double>(g.data()[i]);
  for (std::size_t i = 0; i < vis.size(); ++i)
    for (int p = 0; p < 4; ++p)
      rhs += std::conj(std::complex<double>(vis.data()[i][p])) *
             std::complex<double>(gtg.data()[i][p]);
  point.achieved_adj =
      std::abs(lhs - rhs) / std::max({1.0, std::abs(lhs), std::abs(rhs)});
  return point;
}

/// Scientific notation for the table cells (Table::add(double) is
/// fixed-point, which collapses 1e-5 to 0.000).
std::string sci(double value) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(2) << value;
  return oss.str();
}

void write_sweep_json(const std::string& path,
                      const std::vector<SweepPoint>& points) {
  std::ofstream os(path);
  os << "{\n  \"schema\": \"idg-epsilon-sweep/v1\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    os << "    {\"requested\": " << p.requested << ", \"tier\": \"" << p.tier
       << "\", \"kernels\": \"" << p.kernels
       << "\", \"kernel_size\": " << p.kernel_size
       << ", \"subgrid_size\": " << p.subgrid_size
       << ", \"achieved_l2\": " << p.achieved_l2
       << ", \"achieved_adjointness\": " << p.achieved_adj
       << ", \"grid_seconds\": " << p.grid_seconds << ", \"ok\": "
       << (p.ok() ? "true" : "false") << "}" << (i + 1 < points.size() ? "," : "")
       << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  const sim::BenchmarkConfig cfg = bench::config_from_options(opts);

  std::vector<double> epsilons;
  if (opts.flag("sweep")) {
    epsilons = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};
  } else {
    epsilons = {opts.get("epsilon", 1e-3)};
  }

  std::cout << "== epsilon sweep: achieved vs requested accuracy ==\n"
            << "   dataset: " << cfg.describe() << "\n\n";

  std::vector<SweepPoint> points;
  for (const double eps : epsilons) {
    points.push_back(run_point(eps, cfg, opts));
    const SweepPoint& p = points.back();
    std::cout << "   epsilon " << eps << " -> tier " << p.tier
              << ", l2 " << p.achieved_l2 << ", adjointness "
              << p.achieved_adj << ", " << p.grid_seconds << " s"
              << (p.ok() ? "" : "  ** CONTRACT VIOLATED **") << "\n";
  }
  std::cout << "\n";

  Table table({"requested", "tier", "kernels", "kernel", "subgrid",
               "achieved l2", "adjointness", "grid s", "ok"});
  for (const SweepPoint& p : points) {
    table.row()
        .add(sci(p.requested))
        .add(p.tier)
        .add(p.kernels)
        .add(static_cast<std::uint64_t>(p.kernel_size))
        .add(static_cast<std::uint64_t>(p.subgrid_size))
        .add(sci(p.achieved_l2))
        .add(sci(p.achieved_adj))
        .add(p.grid_seconds, 4)
        .add(p.ok() ? "yes" : "NO");
  }
  table.print(std::cout);
  bench::maybe_write_csv(table, opts);

  if (opts.has("json")) {
    const std::string path = opts.get("json", std::string{});
    write_sweep_json(path, points);
    std::cout << "\n(wrote " << path << ")\n";
  }

  // Self-checking: the contract is the exit status.
  for (const SweepPoint& p : points) {
    if (!p.ok()) {
      std::cerr << "FAILED: achieved error exceeds requested epsilon "
                << p.requested << "\n";
      return 1;
    }
  }
  return 0;
}
