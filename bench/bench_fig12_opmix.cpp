// Regenerates Fig 12: operation throughput for various mixes of FMA
// instructions and sine/cosine evaluations (rho = #FMA/#sincos) — modeled
// curves for the paper's machines plus a *measured* curve for this host
// using the vmath (SVML stand-in) library.
//
// Expected shape: PASCAL stays high as rho decreases (hardware SFUs in a
// separate queue); FIJI and HASWELL collapse at small rho because sincos
// occupies their FMA pipelines.
#include <iostream>

#include "arch/machine.hpp"
#include "arch/opmix.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  std::cout << "== Fig 12: operation throughput vs FMA/sincos mix ==\n\n";

  const auto rhos = arch::default_rhos();
  const auto machines = arch::paper_machines();
  const auto measured = arch::measure_host_opmix(
      rhos, opts.get("seconds-per-point", 0.05));

  Table table({"rho", "HASWELL (GOps/s)", "FIJI (GOps/s)", "PASCAL (GOps/s)",
               "HOST measured (GOps/s)"});
  std::vector<std::vector<arch::OpmixPoint>> modeled;
  modeled.reserve(machines.size());
  for (const auto& m : machines) modeled.push_back(arch::modeled_opmix(m, rhos));

  for (std::size_t i = 0; i < rhos.size(); ++i) {
    table.row()
        .add(rhos[i], 0)
        .add(modeled[0][i].gops, 0)
        .add(modeled[1][i].gops, 0)
        .add(modeled[2][i].gops, 0)
        .add(measured[i].gops, 2);
  }
  table.print(std::cout);

  std::cout << "\nnormalized to each machine's FMA peak:\n\n";
  Table norm({"rho", "HASWELL", "FIJI", "PASCAL"});
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    norm.row().add(rhos[i], 0);
    for (std::size_t m = 0; m < machines.size(); ++m) {
      norm.add(modeled[m][i].gops * 1e9 / machines[m].peak_ops(), 3);
    }
  }
  norm.print(std::cout);

  std::cout << "\nexpected shape: PASCAL nearly flat (SFUs), HASWELL/FIJI "
               "degrade sharply for small rho; the kernels operate at "
               "rho = 17 (paper Fig 12).\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
