// Ablation: the execution-plan trade-offs (paper §V-A).
//
// Two knobs shape IDG's efficiency:
//  * kernel_size — the uv margin reserved per subgrid for taper/A-term/
//    W-term support. Larger margins raise accuracy but shrink the area
//    available for packing visibilities, producing more subgrids and more
//    per-visibility arithmetic.
//  * max_timesteps_per_subgrid (T-tilde-max) — bounds work-item size; the
//    paper uses it to keep per-subgrid compute "comparable" across items.
//
// For each setting this bench reports subgrid statistics, measured gridding
// throughput, and degridding accuracy against the exact predictor.
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/image.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"
#include "sim/predict.hpp"
#include "sim/skymodel.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Ablation: execution-plan parameters", setup);
  const auto& ds = setup.dataset;

  // Accuracy probe: degrid a pixel-centred point source, compare to the
  // exact prediction.
  const double dl =
      setup.params.image_size / static_cast<double>(setup.params.grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(24 * dl),
                                        static_cast<float>(-18 * dl), 1.0f}};
  auto expected = sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs);
  const double rms = sim::rms_amplitude(expected);
  auto model = sim::render_sky_image(sky, setup.params.grid_size,
                                     setup.params.image_size);
  auto model_grid = model_image_to_grid(model);

  Array3D<Visibility> predicted(ds.nr_baselines(), ds.nr_timesteps(),
                                ds.nr_channels());
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);

  Table table({"kernel size", "T~max", "subgrids", "vis/subgrid",
               "gridding (MVis/s)", "degrid err (rel)"});

  auto run = [&](std::size_t kernel_size, int tmax) {
    Parameters p = setup.params;
    p.kernel_size = kernel_size;
    p.max_timesteps_per_subgrid = tmax;
    Plan plan(p, ds.uvw, ds.frequencies, ds.baselines);
    Processor proc(p, kernels::optimized_kernels());

    grid.zero();
    obs::AggregateSink gt;
    proc.grid_visibilities(plan, ds.uvw.cview(), ds.visibilities.cview(),
                           setup.aterms.cview(), grid.view(), gt);
    proc.degrid_visibilities(plan, ds.uvw.cview(), model_grid.cview(),
                             setup.aterms.cview(), predicted.view());
    const double err =
        sim::max_abs_difference(expected, predicted) / rms;
    table.row()
        .add(static_cast<int>(kernel_size))
        .add(tmax)
        .add(static_cast<std::uint64_t>(plan.nr_subgrids()))
        .add(plan.avg_visibilities_per_subgrid(), 1)
        .add(static_cast<double>(plan.nr_planned_visibilities()) /
                 gt.total_seconds() / 1e6,
             3)
        .add(err, 5);
  };

  for (std::size_t ks : {2UL, 4UL, 8UL, 12UL, 16UL}) {
    if (ks >= setup.params.subgrid_size) continue;
    run(ks, 128);
  }
  for (int tmax : {8, 32, 128, 512}) run(8, tmax);

  table.print(std::cout);
  std::cout << "\nexpected shape: larger kernel_size -> fewer visibilities "
               "per subgrid (more subgrids, lower throughput) but lower "
               "error; T~max mainly balances work-item sizes.\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
