// Regenerates Fig 15: energy efficiency (GFlops/W) of the gridder and
// degridder kernels per architecture.
//
// Expected values (paper): PASCAL 32 / 23 GFlops/W (gridder/degridder),
// FIJI ~13, HASWELL ~1.5.
#include <iostream>

#include "arch/cyclemodel.hpp"
#include "arch/machine.hpp"
#include "arch/power.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/accounting.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 15: energy efficiency of the kernels", setup);

  Table table({"architecture", "gridder (GFlops/W)", "degridder (GFlops/W)"});
  for (const auto& machine : arch::paper_machines()) {
    const auto model = arch::model_imaging_cycle(machine, setup.plan);
    const auto& g = model.stage(stage::kGridder);
    const auto& d = model.stage(stage::kDegridder);
    table.row()
        .add(machine.name + " (modeled)")
        .add(arch::gflops_per_watt(machine, g.counts, g.seconds, 0.95), 1)
        .add(arch::gflops_per_watt(machine, d.counts, d.seconds, 0.95), 1);
  }

  // Host: measured kernel times.
  const KernelSet& kernels = bench::kernel_set_from_options(
      opts, setup.params, static_cast<std::size_t>(setup.config.nr_channels));
  Processor proc(setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);
  obs::AggregateSink gt, dt;
  proc.grid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                         setup.dataset.visibilities.cview(),
                         setup.aterms.cview(), grid.view(), gt);
  proc.degrid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                           grid.cview(), setup.aterms.cview(),
                           setup.dataset.visibilities.view(), dt);
  const arch::Machine host = arch::host_machine();
  table.row()
      .add("HOST (measured)")
      .add(arch::gflops_per_watt(host, gridder_op_counts(setup.plan),
                                 gt.seconds(stage::kGridder), 0.9),
           2)
      .add(arch::gflops_per_watt(host, degridder_op_counts(setup.plan),
                                 dt.seconds(stage::kDegridder), 0.9),
           2);

  table.print(std::cout);
  std::cout << "\nexpected values: PASCAL ~32/23, FIJI ~13, HASWELL ~1.5 "
               "GFlops/W (paper Fig 15) — GPUs an order of magnitude more "
               "efficient than CPUs.\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
