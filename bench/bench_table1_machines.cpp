// Regenerates Table I: the three architectures used in the comparison,
// plus a measured row for this host.
#include <iostream>

#include "arch/hostprobe.hpp"
#include "arch/machine.hpp"
#include "common/cli.hpp"
#include "common/report.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  // Standalone table: only --csv is meaningful here (no bench_common
  // dependency, so the shared catalogue is not used).
  Options opts(argc, argv, {"paper", "help", "verbose"}, {"csv"});

  std::cout << "== Table I: the three architectures used in this comparison "
               "==\n\n";
  Table table({"model", "type", "architecture", "clock (GHz)", "#FPUs",
               "peak (TFlops)", "mem (GB)", "mem bw (GB/s)", "TDP (W)"});
  for (const auto& m : arch::paper_machines()) {
    table.row()
        .add(m.model)
        .add(m.type)
        .add(m.architecture)
        .add(m.clock_ghz, 2)
        .add(m.fpus)
        .add(m.peak_tflops, 2)
        .add(m.mem_gb, 0)
        .add(m.mem_bw_gbs, 0)
        .add(m.tdp_w, 0);
  }
  table.print(std::cout);

  std::cout << "\n-- this host (measured ceilings) --\n\n";
  const auto& caps = arch::probe_host();
  const auto host = arch::host_machine();
  Table host_table({"quantity", "value"});
  host_table.row().add("threads").add(caps.nr_threads);
  host_table.row().add("peak FMA/s (measured)").add(si_format(caps.fma_per_second) + "FMA/s");
  host_table.row().add("peak (TFlops, measured)").add(host.peak_tflops, 3);
  host_table.row().add("vmath sincos/s (measured)").add(si_format(caps.sincos_per_second) + "sincos/s");
  host_table.row().add("sincos cost (FMA slots)").add(host.sincos_fma_slots, 1);
  host_table.row().add("mem bw (GB/s, measured)").add(caps.mem_bw_gbs, 1);
  // Counter access status (not part of the tuning fingerprint): whether
  // --hw runs on this host can carry measured IPC / LLC-miss rates.
  const auto& perf = arch::host_perf_counter_status();
  host_table.row().add("perf_event_paranoid").add(perf.paranoid_level);
  host_table.row()
      .add("hw counters")
      .add(perf.available ? "available (" + perf.detail + ")"
                          : "unavailable (" + perf.detail + ")");
  host_table.print(std::cout);

  if (opts.has("csv")) table.write_csv(opts.get("csv", std::string{}));
  return 0;
}
