// Regenerates Fig 14: the distribution of energy consumption over the
// pipeline stages for one imaging cycle — modeled for the 2017 machines
// (TDP-based power model, DESIGN.md §2), measured-time-based for this host.
//
// Host stage times come from the observability layer (obs::AggregateSink
// fed by the selected --backend); --json <path> exports the per-stage
// metrics in the stable idg-obs/v6 schema.
//
// Expected shape: most energy in the gridder and degridder; GPUs an order
// of magnitude below the CPU in total, even including host power.
#include <iostream>

#include "arch/cyclemodel.hpp"
#include "arch/machine.hpp"
#include "arch/power.hpp"
#include "bench_common.hpp"
#include "idg/image.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 14: energy distribution of one imaging cycle",
                      setup);

  const std::vector<std::string> stages = {
      stage::kGridder, stage::kDegridder, stage::kSubgridFft, stage::kAdder,
      stage::kSplitter, stage::kGridFft};

  Table table({"architecture", "stage", "energy (J)", "% of cycle", "bar"});

  // Modeled machines.
  for (const auto& machine : arch::paper_machines()) {
    const auto model = arch::model_imaging_cycle(machine, setup.plan);
    for (const auto& s : stages) {
      const double j = model.stage(s).device_joules;
      table.row()
          .add(machine.name + " (modeled)")
          .add(s)
          .add(j, 2)
          .add(100.0 * j / model.device_joules, 1)
          .add(ascii_bar(j / model.device_joules, 30));
    }
    table.row()
        .add(machine.name + " (modeled)")
        .add("TOTAL (+host)")
        .add(model.device_joules + model.host_joules, 2)
        .add(100.0, 1)
        .add("");
  }

  // Host: measured stage times x host power model.
  const KernelSet& kernels = bench::kernel_set_from_options(
      opts, setup.params, static_cast<std::size_t>(setup.config.nr_channels));
  auto backend = bench::backend_from_options(opts, setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);
  obs::AggregateSink sink;
  backend->grid(setup.plan, setup.dataset.uvw.cview(),
                setup.dataset.visibilities.cview(),
                setup.dataset.flag_view(), setup.aterms.cview(),
                grid.view(), sink);
  {
    obs::Span span(sink, stage::kGridFft);
    auto dirty = make_dirty_image(grid, setup.plan.nr_planned_visibilities());
    (void)dirty;
  }
  backend->degrid(setup.plan, setup.dataset.uvw.cview(), grid.cview(),
                  setup.dataset.flag_view(), setup.aterms.cview(),
                  setup.dataset.visibilities.view(),
                  sink);

  const obs::MetricsSnapshot metrics = sink.snapshot();
  const auto stage_seconds = [&](const std::string& s) {
    auto it = metrics.find(s);
    return it == metrics.end() ? 0.0 : it->second.seconds;
  };
  const arch::Machine host = arch::host_machine();
  double host_total = 0.0;
  for (const auto& s : stages)
    host_total += arch::device_energy_j(host, stage_seconds(s), 0.9);
  for (const auto& s : stages) {
    const double j = arch::device_energy_j(host, stage_seconds(s), 0.9);
    table.row()
        .add("HOST (measured time, " + backend->name() + ")")
        .add(s)
        .add(j, 2)
        .add(100.0 * j / host_total, 1)
        .add(ascii_bar(j / host_total, 30));
  }

  table.print(std::cout);
  std::cout << "\nexpected shape: energy concentrated in the gridder and "
               "degridder; GPU totals an order of magnitude below the CPU "
               "(paper Fig 14).\n";
  bench::maybe_write_csv(table, opts);
  bench::maybe_write_json(metrics, opts);
  return 0;
}
