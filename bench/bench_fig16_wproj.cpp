// Regenerates Fig 16: throughput of W-projection gridding (WPG) versus IDG
// for various W-kernel sizes N_W, and IDG at several subgrid sizes N-tilde
// — all measured on this host.
//
// Expected shape: comparable throughput for large N_W; IDG increasingly
// ahead as N_W shrinks toward the practically relevant N_W <= 24 — and IDG
// needs no W-kernel computation or storage at all (reported alongside).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"
#include "wproj/gridder.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 16: WPG vs IDG throughput vs kernel size", setup);

  const auto& ds = setup.dataset;
  const double nvis = static_cast<double>(ds.nr_visibilities());

  // Max |w| in wavelengths, for the W-kernel set.
  double w_max = 0.0;
  for (const auto& c : ds.uvw)
    w_max = std::max(w_max, std::abs(static_cast<double>(c.w)));
  w_max = w_max / ds.obs.min_wavelength() * 1.01 + 1.0;

  Table table({"algorithm", "kernel size", "gridding (MVis/s)",
               "degridding (MVis/s)", "kernel storage (MB)",
               "kernel build (s)"});

  // --- WPG sweep over N_W ------------------------------------------------------
  Array3D<Visibility> scratch_vis(ds.nr_baselines(), ds.nr_timesteps(),
                                  ds.nr_channels());
  for (long nw : {4L, 8L, 16L, 24L, 32L, 48L, 64L}) {
    if (opts.has("max-nw") && nw > opts.get("max-nw", 64L)) continue;
    wproj::WprojParameters wp;
    wp.grid_size = setup.params.grid_size;
    wp.image_size = setup.params.image_size;
    wp.kernel.support = static_cast<std::size_t>(nw);
    wp.kernel.oversampling = 8;
    wp.kernel.nr_w_planes = static_cast<int>(opts.get("w-planes", 9L));
    wp.kernel.w_max = w_max;
    wproj::WprojGridder wpg(wp);

    Array3D<cfloat> grid(4, wp.grid_size, wp.grid_size);
    Timer tg;
    wpg.grid_visibilities(ds.uvw.cview(), ds.visibilities.cview(),
                          ds.frequencies, grid.view());
    const double grid_s = tg.seconds();
    Timer td;
    wpg.degrid_visibilities(ds.uvw.cview(), grid.cview(), ds.frequencies,
                            scratch_vis.view());
    const double degrid_s = td.seconds();

    table.row()
        .add("WPG (N_W=" + std::to_string(nw) + ")")
        .add(static_cast<int>(nw))
        .add(nvis / grid_s / 1e6, 3)
        .add(nvis / degrid_s / 1e6, 3)
        .add(static_cast<double>(wpg.kernels().storage_bytes()) / 1e6, 1)
        .add(wpg.kernels().construction_seconds(), 2);
  }

  // --- IDG sweep over subgrid size N-tilde ----------------------------------------
  const KernelSet& kernels = bench::kernel_set_from_options(
      opts, setup.params, static_cast<std::size_t>(setup.config.nr_channels));
  for (long n : {8L, 16L, 24L, 32L}) {
    Parameters p = setup.params;
    p.subgrid_size = static_cast<std::size_t>(n);
    p.kernel_size = std::max<std::size_t>(4, static_cast<std::size_t>(n) / 3);
    Plan plan(p, ds.uvw, ds.frequencies, ds.baselines);
    auto aterms = sim::make_identity_aterms(
        (setup.config.nr_timesteps + setup.config.aterm_interval - 1) /
            setup.config.aterm_interval,
        setup.config.nr_stations, p.subgrid_size);
    Processor proc(p, kernels);

    Array3D<cfloat> grid(4, p.grid_size, p.grid_size);
    obs::AggregateSink gt, dt;
    proc.grid_visibilities(plan, ds.uvw.cview(), ds.visibilities.cview(),
                           aterms.cview(), grid.view(), gt);
    proc.degrid_visibilities(plan, ds.uvw.cview(), grid.cview(),
                             aterms.cview(), scratch_vis.view(), dt);
    const double planned =
        static_cast<double>(plan.nr_planned_visibilities());
    table.row()
        .add("IDG (N~=" + std::to_string(n) + ")")
        .add(static_cast<int>(n))
        .add(planned / gt.total_seconds() / 1e6, 3)
        .add(planned / dt.total_seconds() / 1e6, 3)
        .add(0.0, 1)   // IDG stores no convolution kernels
        .add(0.0, 2);  // ... and computes none
  }

  table.print(std::cout);
  std::cout << "\nexpected shape: WPG throughput rises steeply as N_W "
               "shrinks but requires the kernel storage/build columns; IDG "
               "is roughly flat in its subgrid size, wins for the practical "
               "N_W <= 24 regime, and needs no kernels (paper Fig 16; note "
               "WPG there also omits kernel construction from the timing).\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
