// Kernel-variant autotuner driver (DESIGN.md §14).
//
// Benchmarks the registered kernel-variant family (optimized, sincos
// variants, the coarsened family and — with a toolchain — the JIT twins)
// for one (subgrid_size, nr_channels, nr_stations) shape and both
// operations, with warmup/repeat/min-of-N discipline, prints the ranking,
// and persists the winners into the per-host idg-tune/v1 database that the
// "tuned" kernel set consults.
//
//   bench_autotune --subgrid 24 --channels 8 --stations 12
//       [--time T] [--warmup N] [--repeats N]
//       [--candidates name,name,...]   restrict the candidate set
//       [--tune-db PATH]               database file (default: per-host
//                                      cache, $IDG_TUNE_DB overrides)
//       [--json PATH]                  idg-autotune/v1 report with the full
//                                      per-candidate ranking (the perf-smoke
//                                      gate checks winner vs optimized here)
//       [--hw]                         re-run the winners through the real
//                                      backend with hardware counters live
//                                      and record each winner's measured IPC
//                                      and LLC miss rate in the report
//                                      (optional fields; omitted when the
//                                      host masks counter access)
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "idg/processor.hpp"
#include "kernels/autotune.hpp"

namespace {

using namespace idg;

std::string format_double(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

void write_report_json(const std::string& path,
                       const std::vector<kernels::AutotuneResult>& results,
                       const std::map<std::string, obs::HwCounters>& hw) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  IDG_CHECK(out.good(), "cannot write '" << path << "'");
  out << "{\n  \"schema\": \"idg-autotune/v1\",\n  \"host\": \""
      << kernels::host_fingerprint() << "\",\n  \"results\": [";
  bool first = true;
  for (const kernels::AutotuneResult& r : results) {
    double optimized_seconds = r.entry.baseline_seconds;
    out << (first ? "" : ",") << "\n    {\n      \"op\": \""
        << to_string(r.entry.op) << "\",\n      \"subgrid_size\": "
        << r.entry.shape.subgrid_size
        << ",\n      \"nr_channels\": " << r.entry.shape.nr_channels
        << ",\n      \"nr_stations\": " << r.entry.shape.nr_stations
        << ",\n      \"winner\": \"" << r.entry.kernel_set
        << "\",\n      \"winner_seconds\": " << format_double(r.entry.seconds)
        << ",\n      \"optimized_seconds\": "
        << format_double(optimized_seconds)
        << ",\n      \"speedup\": " << format_double(r.entry.speedup());
    // Optional measured-counter fields (--hw with live counters only), so
    // counter-less runs keep emitting the exact report they always did.
    const auto hw_it = hw.find(to_string(r.entry.op));
    if (hw_it != hw.end() && hw_it->second.any()) {
      out << ",\n      \"winner_ipc\": " << format_double(hw_it->second.ipc())
          << ",\n      \"winner_llc_miss_rate\": "
          << format_double(hw_it->second.llc_miss_rate());
    }
    out << ",\n      \"candidates\": [";
    bool cfirst = true;
    for (const kernels::CandidateTiming& c : r.ranking) {
      out << (cfirst ? "" : ",") << "\n        {\"name\": \"" << c.kernel_set
          << "\", \"seconds\": " << format_double(c.seconds) << "}";
      cfirst = false;
    }
    out << "\n      ]\n    }";
    first = false;
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = bench::parse_bench_options(argc, argv);

    Parameters params;
    params.grid_size = static_cast<std::size_t>(opts.get("grid", 512L));
    params.subgrid_size = static_cast<std::size_t>(opts.get("subgrid", 24L));
    params.nr_stations = static_cast<int>(opts.get("stations", 12L));
    params.kernel_size = static_cast<std::size_t>(opts.get("kernel-size", 8L));
    const std::size_t nr_channels =
        static_cast<std::size_t>(opts.get("channels", 8L));

    kernels::AutotuneOptions tune = bench::autotune_options_from(opts);
    tune.nr_timesteps = static_cast<int>(opts.get("time", 32L));

    std::cout << "== autotune ==\n   host: " << kernels::host_fingerprint()
              << "\n   shape: subgrid " << params.subgrid_size << ", channels "
              << nr_channels << ", stations " << params.nr_stations
              << "\n   discipline: warmup " << tune.warmup << ", min of "
              << tune.repeats << " repeats\n\n";

    const std::string db_path =
        opts.get("tune-db", kernels::default_tuning_database_path());
    kernels::TuningDatabase db;
    try {
      db = kernels::TuningDatabase::load(db_path);
      std::cout << "   (extending existing database, " << db.size()
                << " entries)\n\n";
    } catch (const Error&) {
      // Missing or unusable database: start fresh.
    }

    const std::vector<kernels::AutotuneResult> results =
        kernels::autotune(db, params, nr_channels, tune);

    for (const kernels::AutotuneResult& r : results) {
      std::cout << "-- " << to_string(r.entry.op) << " --\n";
      for (std::size_t i = 0; i < r.ranking.size(); ++i) {
        const kernels::CandidateTiming& c = r.ranking[i];
        std::cout << "   " << (i == 0 ? "-> " : "   ") << std::left
                  << std::setw(20) << c.kernel_set << "  " << std::right
                  << std::setw(10) << std::fixed << std::setprecision(6)
                  << c.seconds << " s\n";
      }
      std::cout << "   winner: " << r.entry.kernel_set << " ("
                << std::setprecision(3) << r.entry.speedup()
                << "x optimized)\n\n";
    }

    db.save(db_path);
    kernels::reload_process_tuning_database(db_path);
    std::cout << "(wrote " << db_path << ")\n";

    // --hw: measure the winners for real. Re-run both directions through
    // the backend with the "tuned" dispatch (which now resolves to the
    // winners persisted above) under a live counter session, and report
    // each winner's measured IPC / LLC miss rate.
    std::map<std::string, obs::HwCounters> winner_hw;
    if (opts.flag("hw")) {
      bench::PerfGuard perf(opts);
      if (perf.live()) {
        auto setup = bench::make_setup(opts);
        const KernelSet& tuned = kernels::kernel_set("tuned");
        auto backend = bench::backend_from_options(opts, setup.params, tuned);
        Array3D<cfloat> grid(4, setup.params.grid_size,
                             setup.params.grid_size);
        obs::AggregateSink sink;
        backend->grid(setup.plan, setup.dataset.uvw.cview(),
                      setup.dataset.visibilities.cview(),
                      setup.aterms.cview(), grid.view(), sink);
        backend->degrid(setup.plan, setup.dataset.uvw.cview(), grid.cview(),
                        setup.aterms.cview(),
                        setup.dataset.visibilities.view(), sink);
        const obs::MetricsSnapshot snap = sink.snapshot();
        // Key by the TuneOp name ("grid"/"degrid") the report uses, joined
        // from the kernel stage that implements that operation.
        for (const auto& [op, stage] :
             {std::pair{"grid", stage::kGridder},
              std::pair{"degrid", stage::kDegridder}}) {
          const auto it = snap.find(stage);
          if (it == snap.end() || !it->second.hw.any()) continue;
          winner_hw[op] = it->second.hw;
          std::cout << "   " << op
                    << " winner: IPC " << std::setprecision(2) << std::fixed
                    << it->second.hw.ipc() << ", LLC miss rate "
                    << std::setprecision(3) << it->second.hw.llc_miss_rate()
                    << "\n";
        }
      }
    }

    if (opts.has("json")) {
      const std::string json_path = opts.get("json", std::string{});
      write_report_json(json_path, results, winner_hw);
      std::cout << "(wrote " << json_path << ")\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_autotune: " << e.what() << "\n";
    return 1;
  }
}
