// Regenerates Fig 11: the modified roofline analysis. For every
// architecture and for both kernels it prints the operational intensity
// (ops per device-memory byte), the classic rooflines, the rho = 17 op-mix
// ceiling (the paper's dashed lines) and the achieved performance — modeled
// for the 2017 machines, measured for this host.
//
// The measured host rows come from a real run through the selected backend
// (--backend, default synchronous): the analytic op counts recorded by the
// run are divided by the measured per-stage seconds and attributed against
// the host's rooflines (arch/attribution.hpp). --json <path> writes the
// full per-stage attribution in the idg-roofline/v2 schema; --hw samples
// hardware perf_event counters per stage so the v2 output carries measured
// instructions/cycles/LLC-miss bytes and a measured-vs-analytic agreement
// ratio beside the analytic points (graceful note when the host masks
// counter access); --trace <path> additionally records the run's event
// timeline.
//
// Expected shape: all kernels compute-bound; PASCAL near its theoretical
// peak (74% gridder / 55% degridder); HASWELL and FIJI far below peak but
// *at* their rho = 17 math-library ceilings.
#include <fstream>
#include <iostream>

#include "arch/attribution.hpp"
#include "arch/machine.hpp"
#include "arch/roofline.hpp"
#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "idg/accounting.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  bench::PerfGuard perf(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 11: modified roofline analysis", setup);

  const OpCounts gridder = gridder_op_counts(setup.plan);
  const OpCounts degridder = degridder_op_counts(setup.plan);

  Table table({"architecture", "kernel", "intensity (ops/B)", "ridge (ops/B)",
               "peak (TOps/s)", "rho=17 ceiling", "achieved (TOps/s)",
               "% of peak"});

  auto add_modeled = [&](const arch::Machine& m, const char* kernel,
                         const OpCounts& counts) {
    const double achieved = arch::modeled_ops_per_second(m, counts);
    table.row()
        .add(m.name + " (modeled)")
        .add(kernel)
        .add(counts.intensity_dev(), 1)
        .add(arch::ridge_point(m), 1)
        .add(m.peak_ops() / 1e12, 2)
        .add(arch::opmix_ceiling(m, counts.rho()) / 1e12, 2)
        .add(achieved / 1e12, 2)
        .add(100.0 * achieved / m.peak_ops(), 1);
  };
  for (const auto& m : arch::paper_machines()) {
    add_modeled(m, "gridder", gridder);
    add_modeled(m, "degridder", degridder);
  }

  // Measured host rows: run both directions through the selected backend;
  // the sinks accumulate measured seconds AND the plan's analytic counts,
  // which attribute_roofline joins against the host's ceilings.
  const KernelSet& kernels = bench::kernel_set_from_options(
      opts, setup.params, static_cast<std::size_t>(setup.config.nr_channels));
  auto backend = bench::backend_from_options(opts, setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);
  obs::AggregateSink gt, dt;
  backend->grid(setup.plan, setup.dataset.uvw.cview(),
                setup.dataset.visibilities.cview(), setup.aterms.cview(),
                grid.view(), gt);
  backend->degrid(setup.plan, setup.dataset.uvw.cview(), grid.cview(),
                  setup.aterms.cview(), setup.dataset.visibilities.view(), dt);

  const arch::Machine host = arch::host_machine();
  obs::MetricsSnapshot merged = gt.snapshot();
  for (const auto& [name, m] : dt.snapshot()) merged[name] += m;
  const auto attribution = arch::attribute_roofline(host, merged);

  auto add_measured = [&](const char* kernel, const std::string& stage) {
    for (const auto& a : attribution) {
      if (a.stage != stage) continue;
      table.row()
          .add("HOST (measured)")
          .add(kernel)
          .add(a.intensity_dev, 1)
          .add(arch::ridge_point(host), 1)
          .add(host.peak_ops() / 1e12, 2)
          .add(a.ceiling_opmix / 1e12, 2)
          .add(a.achieved_ops / 1e12, 3)
          .add(a.pct_of_peak, 1);
    }
  };
  add_measured("gridder", stage::kGridder);
  add_measured("degridder", stage::kDegridder);

  table.print(std::cout);
  std::cout << "\n";
  arch::write_attribution_table(std::cout, host, attribution);
  std::cout << "\nexpected shape: intensity >> ridge everywhere (compute "
               "bound); PASCAL ~74%/55% of peak; HASWELL/FIJI/HOST well "
               "below peak but close to their rho=17 sincos ceilings "
               "(paper Fig 11).\n";
  bench::maybe_write_csv(table, opts);
  if (opts.has("json")) {
    const std::string path = opts.get("json", std::string{});
    std::ofstream os(path);
    IDG_CHECK(os.good(), "cannot open '" << path << "' for writing");
    arch::write_attribution_json(os, host, attribution);
    std::cout << "\n(wrote " << path << ")\n";
  }
  return 0;
}
