// Regenerates Fig 11: the modified roofline analysis. For every
// architecture and for both kernels it prints the operational intensity
// (ops per device-memory byte), the classic rooflines, the rho = 17 op-mix
// ceiling (the paper's dashed lines) and the achieved performance — modeled
// for the 2017 machines, measured for this host.
//
// Expected shape: all kernels compute-bound; PASCAL near its theoretical
// peak (74% gridder / 55% degridder); HASWELL and FIJI far below peak but
// *at* their rho = 17 math-library ceilings.
#include <iostream>

#include "arch/machine.hpp"
#include "arch/roofline.hpp"
#include "bench_common.hpp"
#include "common/timer.hpp"
#include "idg/accounting.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts(argc, argv);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 11: modified roofline analysis", setup);

  const OpCounts gridder = gridder_op_counts(setup.plan);
  const OpCounts degridder = degridder_op_counts(setup.plan);

  Table table({"architecture", "kernel", "intensity (ops/B)", "ridge (ops/B)",
               "peak (TOps/s)", "rho=17 ceiling", "achieved (TOps/s)",
               "% of peak"});

  auto add_modeled = [&](const arch::Machine& m, const char* kernel,
                         const OpCounts& counts) {
    const double achieved = arch::modeled_ops_per_second(m, counts);
    table.row()
        .add(m.name + " (modeled)")
        .add(kernel)
        .add(counts.intensity_dev(), 1)
        .add(arch::ridge_point(m), 1)
        .add(m.peak_ops() / 1e12, 2)
        .add(arch::opmix_ceiling(m, counts.rho()) / 1e12, 2)
        .add(achieved / 1e12, 2)
        .add(100.0 * achieved / m.peak_ops(), 1);
  };
  for (const auto& m : arch::paper_machines()) {
    add_modeled(m, "gridder", gridder);
    add_modeled(m, "degridder", degridder);
  }

  // Measured host rows: run the kernels and divide the analytic op count by
  // the measured kernel-stage time.
  const KernelSet& kernels =
      kernels::kernel_set(opts.get("kernels", std::string("optimized")));
  Processor proc(setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);
  obs::AggregateSink gt, dt;
  proc.grid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                         setup.dataset.visibilities.cview(),
                         setup.aterms.cview(), grid.view(), gt);
  proc.degrid_visibilities(setup.plan, setup.dataset.uvw.cview(),
                           grid.cview(), setup.aterms.cview(),
                           setup.dataset.visibilities.view(), dt);

  const arch::Machine host = arch::host_machine();
  auto add_measured = [&](const char* kernel, const OpCounts& counts,
                          double seconds) {
    const double achieved = static_cast<double>(counts.ops()) / seconds;
    table.row()
        .add("HOST (measured)")
        .add(kernel)
        .add(counts.intensity_dev(), 1)
        .add(arch::ridge_point(host), 1)
        .add(host.peak_ops() / 1e12, 2)
        .add(arch::opmix_ceiling(host, counts.rho()) / 1e12, 2)
        .add(achieved / 1e12, 3)
        .add(100.0 * achieved / host.peak_ops(), 1);
  };
  add_measured("gridder", gridder, gt.seconds(stage::kGridder));
  add_measured("degridder", degridder, dt.seconds(stage::kDegridder));

  table.print(std::cout);
  std::cout << "\nexpected shape: intensity >> ridge everywhere (compute "
               "bound); PASCAL ~74%/55% of peak; HASWELL/FIJI/HOST well "
               "below peak but close to their rho=17 sincos ceilings "
               "(paper Fig 11).\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
