// Regenerates Fig 13: the roofline with operational intensity computed
// against GPU *shared memory* traffic instead of device memory.
//
// The modeled rows place the two kernels under the GPU machines' shared-
// memory bounds. A measured section then runs both kernels on this host
// through the selected backend and attributes the per-stage achieved rates
// against the host's rooflines (arch/attribution.hpp) — for a CPU the
// shared-memory ceiling is reported as n/a and the binding ceiling is the
// op-mix or device-bandwidth roofline, which is exactly the contrast the
// figure makes. --json <path> writes the measured attribution
// (idg-roofline/v2); --hw adds measured perf_event counters per stage to
// that output (DESIGN.md §15); --trace records the run's event timeline.
//
// Expected shape: on PASCAL both kernels sit close to the shared-memory
// bandwidth bound — which explains why the gridder reaches only 74% and
// the degridder 55% of peak despite hardware sincos; FIJI is also
// "relatively close to hitting the shared memory bandwidth limit".
#include <fstream>
#include <iostream>

#include "arch/attribution.hpp"
#include "arch/machine.hpp"
#include "arch/roofline.hpp"
#include "bench_common.hpp"
#include "common/error.hpp"
#include "idg/accounting.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = bench::parse_bench_options(argc, argv);
  bench::TraceGuard trace(opts);
  bench::PerfGuard perf(opts);
  auto setup = bench::make_setup(opts);
  bench::print_header("Fig 13: shared-memory roofline (GPU kernels)", setup);

  const OpCounts gridder = gridder_op_counts(setup.plan);
  const OpCounts degridder = degridder_op_counts(setup.plan);

  Table table({"architecture", "kernel", "shared intensity (ops/B)",
               "shared bw (GB/s)", "shared bound (TOps/s)",
               "achieved (TOps/s)", "% of shared bound"});
  for (const auto& m : arch::paper_machines()) {
    if (m.shared_bw_gbs <= 0.0) continue;  // CPUs have no shared-memory tier
    for (const auto& [kernel, counts] :
         {std::pair{"gridder", gridder}, std::pair{"degridder", degridder}}) {
      const double bound = arch::roofline_shared(m, counts.intensity_shared());
      const double achieved = arch::modeled_ops_per_second(m, counts);
      table.row()
          .add(m.name)
          .add(kernel)
          .add(counts.intensity_shared(), 2)
          .add(m.shared_bw_gbs, 0)
          .add(bound / 1e12, 2)
          .add(achieved / 1e12, 2)
          .add(100.0 * achieved / bound, 1);
    }
  }
  table.print(std::cout);

  // Measured contrast: the same kernels on this host, attributed against
  // the host's rooflines (no shared tier -> op-mix / device bandwidth
  // bound instead).
  const KernelSet& kernels = bench::kernel_set_from_options(
      opts, setup.params, static_cast<std::size_t>(setup.config.nr_channels));
  auto backend = bench::backend_from_options(opts, setup.params, kernels);
  Array3D<cfloat> grid(4, setup.params.grid_size, setup.params.grid_size);
  obs::AggregateSink gt, dt;
  backend->grid(setup.plan, setup.dataset.uvw.cview(),
                setup.dataset.visibilities.cview(), setup.aterms.cview(),
                grid.view(), gt);
  backend->degrid(setup.plan, setup.dataset.uvw.cview(), grid.cview(),
                  setup.aterms.cview(), setup.dataset.visibilities.view(), dt);

  const arch::Machine host = arch::host_machine();
  obs::MetricsSnapshot merged = gt.snapshot();
  for (const auto& [name, m] : dt.snapshot()) merged[name] += m;
  const auto attribution = arch::attribute_roofline(host, merged);
  std::cout << "\n";
  arch::write_attribution_table(std::cout, host, attribution);

  std::cout << "\nexpected shape: both kernels within ~10% of the shared-"
               "memory bandwidth bound on PASCAL, close on FIJI "
               "(paper Fig 13); the measured host rows bind on the op-mix "
               "or device-memory ceiling instead (no shared tier).\n";
  bench::maybe_write_csv(table, opts);
  if (opts.has("json")) {
    const std::string path = opts.get("json", std::string{});
    std::ofstream os(path);
    IDG_CHECK(os.good(), "cannot open '" << path << "' for writing");
    arch::write_attribution_json(os, host, attribution);
    std::cout << "\n(wrote " << path << ")\n";
  }
  return 0;
}
