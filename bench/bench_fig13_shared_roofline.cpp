// Regenerates Fig 13: the roofline with operational intensity computed
// against GPU *shared memory* traffic instead of device memory.
//
// Expected shape: on PASCAL both kernels sit close to the shared-memory
// bandwidth bound — which explains why the gridder reaches only 74% and
// the degridder 55% of peak despite hardware sincos; FIJI is also
// "relatively close to hitting the shared memory bandwidth limit".
#include <iostream>

#include "arch/machine.hpp"
#include "arch/roofline.hpp"
#include "bench_common.hpp"
#include "idg/accounting.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts(argc, argv);
  auto setup = bench::make_setup(opts, /*fill_visibilities=*/false);
  bench::print_header("Fig 13: shared-memory roofline (GPU kernels)", setup);

  const OpCounts gridder = gridder_op_counts(setup.plan);
  const OpCounts degridder = degridder_op_counts(setup.plan);

  Table table({"architecture", "kernel", "shared intensity (ops/B)",
               "shared bw (GB/s)", "shared bound (TOps/s)",
               "achieved (TOps/s)", "% of shared bound"});
  for (const auto& m : arch::paper_machines()) {
    if (m.shared_bw_gbs <= 0.0) continue;  // CPUs have no shared-memory tier
    for (const auto& [kernel, counts] :
         {std::pair{"gridder", gridder}, std::pair{"degridder", degridder}}) {
      const double bound = arch::roofline_shared(m, counts.intensity_shared());
      const double achieved = arch::modeled_ops_per_second(m, counts);
      table.row()
          .add(m.name)
          .add(kernel)
          .add(counts.intensity_shared(), 2)
          .add(m.shared_bw_gbs, 0)
          .add(bound / 1e12, 2)
          .add(achieved / 1e12, 2)
          .add(100.0 * achieved / bound, 1);
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: both kernels within ~10% of the shared-"
               "memory bandwidth bound on PASCAL, close on FIJI "
               "(paper Fig 13).\n";
  bench::maybe_write_csv(table, opts);
  return 0;
}
