// google-benchmark microbenchmarks for the individual components: kernel
// variants (the §V-B optimization ablation plus the coarsened family of
// DESIGN.md §14), subgrid FFTs, adder/splitter and the vectorized math
// library.
//
// The gridder/degridder benches are registered dynamically over the kernel
// registry:
//
//   bench_kernels                       sweep every registered variant
//   bench_kernels --kernel-set tuned    benchmark one named variant
//   bench_kernels --kernel-set all --json-dir out/
//                                       additionally emit one comparable
//                                       idg-obs JSON per variant
//                                       (out/kernels_<name>.json)
//
// All other command-line arguments are forwarded to google-benchmark
// (--benchmark_filter=..., --benchmark_min_time=..., ...).
#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "fft/fft.hpp"
#include "idg/adder.hpp"
#include "idg/kernels.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/subgrid_fft.hpp"
#include "idg/taper.hpp"
#include "kernels/optimized.hpp"
#include "kernels/vmath.hpp"
#include "obs/export.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;

/// One shared fixture: a small but representative work set.
struct Fixture {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;
  Array2D<float> taper;
  Array4D<cfloat> subgrids;

  static const Fixture& get() {
    static const Fixture f = [] {
      sim::BenchmarkConfig cfg;
      cfg.nr_stations = 12;
      cfg.nr_timesteps = 64;
      cfg.nr_channels = 8;
      cfg.grid_size = 512;
      cfg.subgrid_size = 24;
      auto ds = sim::make_benchmark_dataset(cfg);
      Parameters params;
      params.grid_size = cfg.grid_size;
      params.subgrid_size = cfg.subgrid_size;
      params.image_size = ds.image_size;
      params.nr_stations = cfg.nr_stations;
      params.kernel_size = 8;
      Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
      auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                              cfg.subgrid_size);
      auto taper = make_taper(cfg.subgrid_size);
      Array4D<cfloat> subgrids(plan.nr_subgrids(), 4, cfg.subgrid_size,
                               cfg.subgrid_size);
      return Fixture{std::move(ds), params, std::move(plan),
                     std::move(aterms), std::move(taper),
                     std::move(subgrids)};
    }();
    return f;
  }

  KernelData data() const {
    return {ds.uvw.cview(), plan.wavenumbers(), aterms.cview(),
            taper.cview()};
  }
};

void BM_Gridder(benchmark::State& state, const std::string& kernel_name) {
  const Fixture& f = Fixture::get();
  const KernelSet& k = kernels::kernel_set(kernel_name);
  Array4D<cfloat> out(f.plan.nr_subgrids(), 4, f.params.subgrid_size,
                      f.params.subgrid_size);
  for (auto _ : state) {
    k.grid(f.params, f.data(), f.plan.items(), f.ds.visibilities.cview(),
           out.view());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["MVis/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_planned_visibilities()) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_Degridder(benchmark::State& state, const std::string& kernel_name) {
  const Fixture& f = Fixture::get();
  const KernelSet& k = kernels::kernel_set(kernel_name);
  Array3D<Visibility> vis(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                          f.ds.nr_channels());
  for (auto _ : state) {
    k.degrid(f.params, f.data(), f.plan.items(), f.subgrids.cview(),
             vis.view());
    benchmark::DoNotOptimize(vis.data());
  }
  state.counters["MVis/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_planned_visibilities()) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_SubgridFft(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  Array4D<cfloat> buf(f.plan.nr_subgrids(), 4, f.params.subgrid_size,
                      f.params.subgrid_size);
  for (auto _ : state) {
    subgrid_fft(SubgridFftDirection::ToFourier, buf.view(),
                f.plan.nr_subgrids());
    benchmark::DoNotOptimize(buf.data());
  }
  state.counters["subgrids/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_subgrids()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Adder(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  Array3D<cfloat> grid(4, f.params.grid_size, f.params.grid_size);
  for (auto _ : state) {
    add_subgrids_to_grid(f.params, f.plan.items(), f.subgrids.cview(),
                         grid.view());
    benchmark::DoNotOptimize(grid.data());
  }
  state.counters["subgrids/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_subgrids()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Splitter(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  Array3D<cfloat> grid(4, f.params.grid_size, f.params.grid_size);
  Array4D<cfloat> out(f.plan.nr_subgrids(), 4, f.params.subgrid_size,
                      f.params.subgrid_size);
  for (auto _ : state) {
    split_subgrids_from_grid(f.params, f.plan.items(), grid.cview(),
                             out.view());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["subgrids/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_subgrids()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Sincos(benchmark::State& state, kernels::SincosFn fn) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AlignedVector<float> x(n), s(n), c(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.31f * static_cast<float>(i % 977);
  for (auto _ : state) {
    fn(n, x.data(), s.data(), c.data());
    benchmark::DoNotOptimize(s.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sincos/s"] = benchmark::Counter(
      static_cast<double>(n) * state.iterations(), benchmark::Counter::kIsRate);
}

void BM_Fft2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::Plan2D<float> plan(n, n, fft::Direction::Forward);
  fft::Workspace<float> ws;
  std::vector<cfloat> data(n * n, cfloat{1.0f, -0.5f});
  for (auto _ : state) {
    plan.execute_inplace(data.data(), ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.counters["transforms/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

BENCHMARK(BM_SubgridFft)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Adder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Splitter)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Sincos, vmath, &vmath::sincos_batch)->Arg(4096);
BENCHMARK_CAPTURE(BM_Sincos, lut, &vmath::sincos_lut)->Arg(4096);
BENCHMARK_CAPTURE(BM_Sincos, libm, &vmath::sincos_libm)->Arg(4096);
BENCHMARK(BM_Fft2D)->Arg(24)->Arg(32)->Arg(64)->Arg(256);

/// One timed grid+degrid pass per variant, exported as the same idg-obs
/// JSON the figure benches emit — so a registry sweep yields directly
/// comparable per-variant stage metrics (--kernel-set all --json-dir out/).
void export_variant_json(const std::vector<std::string>& names,
                         const std::string& dir) {
  std::filesystem::create_directories(dir);
  const Fixture& f = Fixture::get();
  for (const std::string& name : names) {
    const KernelSet& k = kernels::kernel_set(name);
    obs::AggregateSink sink;
    Array4D<cfloat> out(f.plan.nr_subgrids(), 4, f.params.subgrid_size,
                        f.params.subgrid_size);
    Array3D<Visibility> vis(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                            f.ds.nr_channels());
    {
      obs::Span span(sink, stage::kGridder);
      k.grid(f.params, f.data(), f.plan.items(), f.ds.visibilities.cview(),
             out.view());
    }
    {
      obs::Span span(sink, stage::kDegridder);
      k.degrid(f.params, f.data(), f.plan.items(), f.subgrids.cview(),
               vis.view());
    }
    OpCounts ops;
    ops.visibilities = f.plan.nr_planned_visibilities();
    sink.record_ops(stage::kGridder, ops);
    sink.record_ops(stage::kDegridder, ops);
    const std::string path = dir + "/kernels_" + name + ".json";
    obs::write_json_file(path, sink.snapshot());
    std::cout << "wrote " << path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own options before google-benchmark sees the rest.
  std::string kernel_set = "all";
  std::string json_dir;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](const char* opt, std::string& out) {
      const std::string prefix = std::string(opt) + "=";
      if (arg == opt && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      if (arg.rfind(prefix, 0) == 0) {
        out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    if (take("--kernel-set", kernel_set) || take("--json-dir", json_dir)) {
      continue;
    }
    fwd.push_back(argv[i]);
  }

  std::vector<std::string> names;
  try {
    if (kernel_set == "all") {
      names = kernels::kernel_set_names();
    } else {
      names.push_back(kernels::kernel_set(kernel_set).name());
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_kernels: " << e.what() << "\n";
    return 1;
  }

  std::vector<std::unique_ptr<std::string>> name_storage;
  for (const std::string& name : names) {
    name_storage.push_back(std::make_unique<std::string>(name));
    const std::string& stable = *name_storage.back();
    benchmark::RegisterBenchmark(
        ("BM_Gridder/" + name).c_str(),
        [&stable](benchmark::State& s) { BM_Gridder(s, stable); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("BM_Degridder/" + name).c_str(),
        [&stable](benchmark::State& s) { BM_Degridder(s, stable); })
        ->Unit(benchmark::kMillisecond);
  }

  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_dir.empty()) {
    try {
      export_variant_json(names, json_dir);
    } catch (const std::exception& e) {
      std::cerr << "bench_kernels: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}
