// google-benchmark microbenchmarks for the individual components: kernel
// variants (the §V-B optimization ablation), subgrid FFTs, adder/splitter
// and the vectorized math library.
#include <benchmark/benchmark.h>

#include "common/aligned.hpp"
#include "fft/fft.hpp"
#include "idg/adder.hpp"
#include "idg/kernels.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/subgrid_fft.hpp"
#include "idg/taper.hpp"
#include "kernels/optimized.hpp"
#include "kernels/vmath.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

namespace {

using namespace idg;

/// One shared fixture: a small but representative work set.
struct Fixture {
  sim::Dataset ds;
  Parameters params;
  Plan plan;
  sim::ATermCube aterms;
  Array2D<float> taper;
  Array4D<cfloat> subgrids;

  static const Fixture& get() {
    static const Fixture f = [] {
      sim::BenchmarkConfig cfg;
      cfg.nr_stations = 12;
      cfg.nr_timesteps = 64;
      cfg.nr_channels = 8;
      cfg.grid_size = 512;
      cfg.subgrid_size = 24;
      auto ds = sim::make_benchmark_dataset(cfg);
      Parameters params;
      params.grid_size = cfg.grid_size;
      params.subgrid_size = cfg.subgrid_size;
      params.image_size = ds.image_size;
      params.nr_stations = cfg.nr_stations;
      params.kernel_size = 8;
      Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
      auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                              cfg.subgrid_size);
      auto taper = make_taper(cfg.subgrid_size);
      Array4D<cfloat> subgrids(plan.nr_subgrids(), 4, cfg.subgrid_size,
                               cfg.subgrid_size);
      return Fixture{std::move(ds), params, std::move(plan),
                     std::move(aterms), std::move(taper),
                     std::move(subgrids)};
    }();
    return f;
  }

  KernelData data() const {
    return {ds.uvw.cview(), plan.wavenumbers(), aterms.cview(),
            taper.cview()};
  }
};

void BM_Gridder(benchmark::State& state, const std::string& kernel_name) {
  const Fixture& f = Fixture::get();
  const KernelSet& k = kernels::kernel_set(kernel_name);
  Array4D<cfloat> out(f.plan.nr_subgrids(), 4, f.params.subgrid_size,
                      f.params.subgrid_size);
  for (auto _ : state) {
    k.grid(f.params, f.data(), f.plan.items(), f.ds.visibilities.cview(),
           out.view());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["MVis/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_planned_visibilities()) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_Degridder(benchmark::State& state, const std::string& kernel_name) {
  const Fixture& f = Fixture::get();
  const KernelSet& k = kernels::kernel_set(kernel_name);
  Array3D<Visibility> vis(f.ds.nr_baselines(), f.ds.nr_timesteps(),
                          f.ds.nr_channels());
  for (auto _ : state) {
    k.degrid(f.params, f.data(), f.plan.items(), f.subgrids.cview(),
             vis.view());
    benchmark::DoNotOptimize(vis.data());
  }
  state.counters["MVis/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_planned_visibilities()) * state.iterations() / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_SubgridFft(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  Array4D<cfloat> buf(f.plan.nr_subgrids(), 4, f.params.subgrid_size,
                      f.params.subgrid_size);
  for (auto _ : state) {
    subgrid_fft(SubgridFftDirection::ToFourier, buf.view(),
                f.plan.nr_subgrids());
    benchmark::DoNotOptimize(buf.data());
  }
  state.counters["subgrids/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_subgrids()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Adder(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  Array3D<cfloat> grid(4, f.params.grid_size, f.params.grid_size);
  for (auto _ : state) {
    add_subgrids_to_grid(f.params, f.plan.items(), f.subgrids.cview(),
                         grid.view());
    benchmark::DoNotOptimize(grid.data());
  }
  state.counters["subgrids/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_subgrids()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Splitter(benchmark::State& state) {
  const Fixture& f = Fixture::get();
  Array3D<cfloat> grid(4, f.params.grid_size, f.params.grid_size);
  Array4D<cfloat> out(f.plan.nr_subgrids(), 4, f.params.subgrid_size,
                      f.params.subgrid_size);
  for (auto _ : state) {
    split_subgrids_from_grid(f.params, f.plan.items(), grid.cview(),
                             out.view());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["subgrids/s"] = benchmark::Counter(
      static_cast<double>(f.plan.nr_subgrids()) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_Sincos(benchmark::State& state, kernels::SincosFn fn) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  AlignedVector<float> x(n), s(n), c(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.31f * static_cast<float>(i % 977);
  for (auto _ : state) {
    fn(n, x.data(), s.data(), c.data());
    benchmark::DoNotOptimize(s.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sincos/s"] = benchmark::Counter(
      static_cast<double>(n) * state.iterations(), benchmark::Counter::kIsRate);
}

void BM_Fft2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::Plan2D<float> plan(n, n, fft::Direction::Forward);
  fft::Workspace<float> ws;
  std::vector<cfloat> data(n * n, cfloat{1.0f, -0.5f});
  for (auto _ : state) {
    plan.execute_inplace(data.data(), ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.counters["transforms/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

BENCHMARK_CAPTURE(BM_Gridder, reference, "reference")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gridder, optimized, "optimized")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gridder, optimized_lut, "optimized-lut")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gridder, optimized_libm, "optimized-libm")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gridder, optimized_phasor, "optimized-phasor")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Gridder, jit, "jit")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Degridder, reference, "reference")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Degridder, optimized, "optimized")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Degridder, optimized_lut, "optimized-lut")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Degridder, optimized_libm, "optimized-libm")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Degridder, optimized_phasor, "optimized-phasor")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Degridder, jit, "jit")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubgridFft)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Adder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Splitter)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Sincos, vmath, &vmath::sincos_batch)->Arg(4096);
BENCHMARK_CAPTURE(BM_Sincos, lut, &vmath::sincos_lut)->Arg(4096);
BENCHMARK_CAPTURE(BM_Sincos, libm, &vmath::sincos_libm)->Arg(4096);
BENCHMARK(BM_Fft2D)->Arg(24)->Arg(32)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
