// CI perf-smoke gate, two modes:
//
//   perf_smoke_check <current.json> <baseline.json>
//       Compares the adder wall time of a fresh bench_fig09_runtime --json
//       export against the checked-in baseline
//       (bench/perf_smoke_baseline.json) and fails when the adder regressed
//       more than 2x. An absolute noise floor keeps the tiny CI problem
//       (adder in the low milliseconds) from flaking on scheduler jitter or
//       a slower runner: a run only fails when it is BOTH >2x the baseline
//       AND above the floor.
//
//   perf_smoke_check --tuned <autotune.json>
//       Reads a bench_autotune --json report (idg-autotune/v1) and asserts
//       that for every operation the autotuned winner is at least as fast as
//       the "optimized" baseline measured in the same run
//       (winner_seconds <= optimized_seconds, tiny print-precision slack).
//       The tuner always measures "optimized" itself, so a winner can never
//       legitimately be slower — a violation means the selection logic broke.
//
// The inputs are idg-obs / idg-autotune exports; the fields are extracted
// with a minimal string scan so the checker has no dependencies.
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

constexpr double kMaxRatio = 2.0;       // fail when current > 2x baseline...
constexpr double kNoiseFloorSec = 0.05; // ...and above this absolute time

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream oss;
  oss << in.rdbuf();
  out = oss.str();
  return true;
}

/// Extracts the "seconds" value of the stage named `stage` from an
/// idg-obs JSON export ("seconds" directly follows "name" per stage in
/// every schema version).
bool stage_seconds(const std::string& json, const std::string& stage,
                   double& out) {
  const std::string name_key = "\"name\": \"" + stage + "\"";
  const std::size_t name_pos = json.find(name_key);
  if (name_pos == std::string::npos) return false;
  const std::string sec_key = "\"seconds\": ";
  const std::size_t sec_pos = json.find(sec_key, name_pos);
  if (sec_pos == std::string::npos) return false;
  try {
    out = std::stod(json.substr(sec_pos + sec_key.size()));
  } catch (...) {
    return false;
  }
  return true;
}

/// Extracts the numeric value following `"key": ` at or after `from`;
/// returns npos on failure, else the position just past the key.
std::size_t scan_number(const std::string& json, const std::string& key,
                        std::size_t from, double& out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return std::string::npos;
  try {
    out = std::stod(json.substr(pos + needle.size()));
  } catch (...) {
    return std::string::npos;
  }
  return pos + needle.size();
}

/// Extracts the string value following `"key": "` at or after `from`.
std::size_t scan_string(const std::string& json, const std::string& key,
                        std::size_t from, std::string& out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return std::string::npos;
  const std::size_t begin = pos + needle.size();
  const std::size_t end = json.find('"', begin);
  if (end == std::string::npos) return std::string::npos;
  out = json.substr(begin, end - begin);
  return end;
}

/// --tuned mode: every result in the idg-autotune/v1 report must have
/// winner_seconds <= optimized_seconds (the winner ranking includes the
/// optimized baseline, so equality is the worst legitimate outcome).
int check_tuned(const std::string& path) {
  std::string json;
  if (!read_file(path, json)) {
    std::cerr << "perf-smoke: cannot read autotune report '" << path << "'\n";
    return 2;
  }
  if (json.find("\"idg-autotune/v1\"") == std::string::npos) {
    std::cerr << "perf-smoke: '" << path
              << "' is not an idg-autotune/v1 report\n";
    return 2;
  }
  // %.17g round-trips doubles exactly, but leave a hair of slack anyway.
  constexpr double kSlack = 1e-12;
  int checked = 0;
  std::size_t pos = 0;
  while (true) {
    std::string op;
    const std::size_t op_end = scan_string(json, "op", pos, op);
    if (op_end == std::string::npos) break;
    std::string winner;
    double winner_seconds = 0.0, optimized_seconds = 0.0;
    if (scan_string(json, "winner", op_end, winner) == std::string::npos ||
        scan_number(json, "winner_seconds", op_end, winner_seconds) ==
            std::string::npos ||
        (pos = scan_number(json, "optimized_seconds", op_end,
                           optimized_seconds)) == std::string::npos) {
      std::cerr << "perf-smoke: malformed autotune result (op " << op
                << ")\n";
      return 2;
    }
    const double speedup =
        winner_seconds > 0.0 ? optimized_seconds / winner_seconds : 0.0;
    std::cout << "perf-smoke tuned " << op << ": winner " << winner << " "
              << winner_seconds << " s vs optimized " << optimized_seconds
              << " s (" << speedup << "x)\n";
    if (winner_seconds > optimized_seconds * (1.0 + kSlack)) {
      std::cerr << "perf-smoke: tuned winner '" << winner << "' for " << op
                << " is SLOWER than optimized — failing\n";
      return 1;
    }
    ++checked;
  }
  if (checked == 0) {
    std::cerr << "perf-smoke: no results in autotune report\n";
    return 2;
  }
  std::cout << "perf-smoke: OK (" << checked << " ops, tuned >= optimized)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--tuned") {
    return check_tuned(argv[2]);
  }
  if (argc != 3) {
    std::cerr << "usage: " << argv[0]
              << " <current.json> <baseline.json> | --tuned <autotune.json>\n";
    return 2;
  }
  std::string current_json, baseline_json;
  if (!read_file(argv[1], current_json)) {
    std::cerr << "perf-smoke: cannot read current export '" << argv[1]
              << "'\n";
    return 2;
  }
  if (!read_file(argv[2], baseline_json)) {
    std::cerr << "perf-smoke: cannot read baseline '" << argv[2] << "'\n";
    return 2;
  }

  double current = 0.0, baseline = 0.0;
  if (!stage_seconds(current_json, "adder", current) ||
      !stage_seconds(baseline_json, "adder", baseline)) {
    std::cerr << "perf-smoke: no adder stage in one of the exports\n";
    return 2;
  }

  const double ratio = baseline > 0.0 ? current / baseline : 0.0;
  std::cout << "perf-smoke adder: current " << current << " s, baseline "
            << baseline << " s, ratio " << ratio << " (limit " << kMaxRatio
            << "x, noise floor " << kNoiseFloorSec << " s)\n";
  if (current > kNoiseFloorSec && ratio > kMaxRatio) {
    std::cerr << "perf-smoke: adder regressed " << ratio
              << "x vs baseline — failing\n";
    return 1;
  }
  std::cout << "perf-smoke: OK\n";
  return 0;
}
