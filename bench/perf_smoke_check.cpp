// CI perf-smoke gate: compares the adder wall time of a fresh
// bench_fig09_runtime --json export against the checked-in baseline
// (bench/perf_smoke_baseline.json) and fails when the adder regressed more
// than 2x. An absolute noise floor keeps the tiny CI problem (adder in the
// low milliseconds) from flaking on scheduler jitter or a slower runner:
// a run only fails when it is BOTH >2x the baseline AND above the floor.
//
// Usage: perf_smoke_check <current.json> <baseline.json>
//
// The inputs are idg-obs exports (the v2 baseline and v3 current exports
// both work — "seconds" directly follows "name" in every version); only the
// adder stage's "seconds" field is read, with a minimal string scan so the
// checker has no dependencies.
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

constexpr double kMaxRatio = 2.0;       // fail when current > 2x baseline...
constexpr double kNoiseFloorSec = 0.05; // ...and above this absolute time

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream oss;
  oss << in.rdbuf();
  out = oss.str();
  return true;
}

/// Extracts the "seconds" value of the stage named `stage` from an
/// idg-obs JSON export ("seconds" directly follows "name" per stage in
/// every schema version).
bool stage_seconds(const std::string& json, const std::string& stage,
                   double& out) {
  const std::string name_key = "\"name\": \"" + stage + "\"";
  const std::size_t name_pos = json.find(name_key);
  if (name_pos == std::string::npos) return false;
  const std::string sec_key = "\"seconds\": ";
  const std::size_t sec_pos = json.find(sec_key, name_pos);
  if (sec_pos == std::string::npos) return false;
  try {
    out = std::stod(json.substr(sec_pos + sec_key.size()));
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: " << argv[0] << " <current.json> <baseline.json>\n";
    return 2;
  }
  std::string current_json, baseline_json;
  if (!read_file(argv[1], current_json)) {
    std::cerr << "perf-smoke: cannot read current export '" << argv[1]
              << "'\n";
    return 2;
  }
  if (!read_file(argv[2], baseline_json)) {
    std::cerr << "perf-smoke: cannot read baseline '" << argv[2] << "'\n";
    return 2;
  }

  double current = 0.0, baseline = 0.0;
  if (!stage_seconds(current_json, "adder", current) ||
      !stage_seconds(baseline_json, "adder", baseline)) {
    std::cerr << "perf-smoke: no adder stage in one of the exports\n";
    return 2;
  }

  const double ratio = baseline > 0.0 ? current / baseline : 0.0;
  std::cout << "perf-smoke adder: current " << current << " s, baseline "
            << baseline << " s, ratio " << ratio << " (limit " << kMaxRatio
            << "x, noise floor " << kNoiseFloorSec << " s)\n";
  if (current > kNoiseFloorSec && ratio > kMaxRatio) {
    std::cerr << "perf-smoke: adder regressed " << ratio
              << "x vs baseline — failing\n";
    return 1;
  }
  std::cout << "perf-smoke: OK\n";
  return 0;
}
