// W-stacking demo (paper §III/§IV/§VI-E): when baselines have very large w
// components, the subgrid raster can no longer sample the w phase screen
// and plain IDG degrades; partitioning the w range into planes bounds the
// residual per subgrid and restores accuracy.
//
// The demo inflates the w coordinates of a simulated observation, grids a
// point source with 1, 4 and 16 w-planes, and reports the recovered peak.
//
// Run: ./wstacking_demo [--w-scale S] [--planes P] ...
#include <iomanip>
#include <iostream>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "example_util.hpp"
#include "idg/wstack.hpp"
#include "kernels/optimized.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = parse_standard_options(argc, argv);

  sim::BenchmarkConfig cfg;
  cfg.nr_stations = static_cast<int>(opts.get("stations", 8L));
  cfg.nr_timesteps = static_cast<int>(opts.get("time", 48L));
  cfg.nr_channels = 4;
  cfg.grid_size = 256;
  cfg.subgrid_size = 32;
  sim::Dataset ds = sim::make_benchmark_dataset_no_vis(cfg);

  const float w_scale = static_cast<float>(opts.get("w-scale", 50.0));
  for (UVW& c : ds.uvw) c.w *= w_scale;
  std::cout << "observation: " << cfg.describe() << "\n"
            << "w coordinates inflated " << w_scale
            << "x to stress the w-term\n\n";

  const double dl = ds.image_size / static_cast<double>(cfg.grid_size);
  sim::SkyModel sky = {sim::PointSource{static_cast<float>(45 * dl),
                                        static_cast<float>(-38 * dl), 1.0f}};
  auto vis = sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = 16;
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                          cfg.subgrid_size);

  const std::size_t cx = cfg.grid_size / 2 + 45;
  const std::size_t cy = cfg.grid_size / 2 - 38;

  auto image_with_planes = [&](int planes) {
    const WPlaneModel wplanes =
        planes == 1 ? WPlaneModel(1, 0.0)
                    : WPlaneModel::fit(planes, ds.uvw, ds.frequencies);
    WStackProcessor proc(params, wplanes, kernels::optimized_kernels());
    Plan plan = proc.make_plan(ds.uvw, ds.frequencies, ds.baselines);
    auto grids = proc.make_grids();
    proc.grid_visibilities(plan, ds.uvw.cview(), vis.cview(),
                           aterms.cview(), grids.view());
    return proc.make_dirty_image(grids.cview(),
                                 plan.nr_planned_visibilities());
  };

  // Reference: enough planes that the residual w error is negligible. The
  // dirty-image sidelobes of this sparse array reach ~1 Jy, so comparing
  // against the reference isolates the *w-term* error from the PSF.
  std::cout << "building the 64-plane reference image...\n";
  const Array3D<cfloat> reference = image_with_planes(64);

  std::cout << std::setprecision(4)
            << "\ngridding with increasing w-plane counts "
               "(true peak = 1.0 Jy):\n\n";
  Array3D<cfloat> best_image;
  for (int planes : {1, 4, 16}) {
    Timer timer;
    auto image = image_with_planes(planes);
    const double seconds = timer.seconds();

    float w_error = 0.0f;
    const long n = static_cast<long>(cfg.grid_size);
    for (long y = n / 8; y < n - n / 8; ++y) {
      for (long x = n / 8; x < n - n / 8; ++x) {
        w_error = std::max(
            w_error, std::abs(image(0, static_cast<std::size_t>(y),
                                    static_cast<std::size_t>(x)) -
                              reference(0, static_cast<std::size_t>(y),
                                        static_cast<std::size_t>(x))));
      }
    }
    std::cout << "  " << std::setw(2) << planes
              << " plane(s): peak = " << image(0, cy, cx).real()
              << " Jy, w-term image error = " << w_error << " Jy, "
              << seconds << " s\n";
    if (planes == 16) best_image = std::move(image);
  }

  std::cout << "\n16-plane image:\n\n";
  examples::print_ascii_image(best_image);
  std::cout << "\nthe paper's point: IDG's large subgrids keep the number "
               "of required w-planes small compared to W-projection's "
               "w-kernel stacks.\n";
  return 0;
}
