// Direction-dependent-effect (A-term) correction demo — the capability
// that motivates IDG (paper §I, §III): per-station complex gain screens
// corrupt the observation; gridding with the matching A-terms removes the
// corruption in the image domain at negligible extra cost.
//
// The demo images the same corrupted visibilities twice — without and with
// A-term correction — and compares the recovered source.
//
// Run: ./aterm_demo [--phase-rms R] ...
#include <iomanip>
#include <iostream>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "example_util.hpp"
#include "idg/image.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = parse_standard_options(argc, argv);

  sim::BenchmarkConfig cfg;
  cfg.nr_stations = static_cast<int>(opts.get("stations", 10L));
  cfg.nr_timesteps = static_cast<int>(opts.get("time", 64L));
  cfg.nr_channels = 4;
  cfg.grid_size = 256;
  cfg.subgrid_size = 32;
  cfg.aterm_interval = 16;
  sim::Dataset ds = sim::make_benchmark_dataset_no_vis(cfg);
  std::cout << "observation: " << cfg.describe() << "\n\n";

  // Per-station ionospheric-like phase screens, changing every
  // aterm_interval timesteps.
  const int nr_slots = cfg.nr_timesteps / cfg.aterm_interval;
  const double phase_rms = opts.get("phase-rms", 1.2);
  auto screens = sim::make_phase_screen_aterms(
      nr_slots, cfg.nr_stations, cfg.subgrid_size, ds.image_size, phase_rms,
      42);
  auto identity = sim::make_identity_aterms(nr_slots, cfg.nr_stations,
                                            cfg.subgrid_size);

  // One bright source, observed through the screens.
  const double dl = ds.image_size / static_cast<double>(cfg.grid_size);
  sim::SkyModel sky = {
      {static_cast<float>(20 * dl), static_cast<float>(14 * dl), 1.0f}};
  sim::ATermContext ctx{&screens, cfg.aterm_interval, ds.image_size};
  auto corrupted =
      sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs, ctx);

  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = 16;
  params.aterm_interval = cfg.aterm_interval;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  Processor processor(params, kernels::optimized_kernels());

  auto image_with = [&](const sim::ATermCube& aterms, const char* label) {
    Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
    Timer timer;
    processor.grid_visibilities(plan, ds.uvw.cview(), corrupted.cview(),
                                aterms.cview(), grid.view());
    const double seconds = timer.seconds();
    auto image = make_dirty_image(grid, plan.nr_planned_visibilities());
    const std::size_t x = cfg.grid_size / 2 + 20;
    const std::size_t y = cfg.grid_size / 2 + 14;
    std::cout << label << ": source peak = " << std::setprecision(3)
              << image(0, y, x).real() << " Jy (true 1.0), gridding took "
              << seconds << " s\n";
    return image;
  };

  std::cout << "imaging the corrupted data...\n";
  auto uncorrected = image_with(identity, "  without A-term correction");
  auto corrected = image_with(screens, "  with    A-term correction");

  std::cout << "\nkey point (paper §VI-E): the corrected run costs "
               "essentially the same — IDG applies A-terms as image-domain "
               "multiplications, not as larger convolution kernels.\n";
  std::cout << "\ncorrected image:\n\n";
  examples::print_ascii_image(corrected);
  (void)uncorrected;
  return 0;
}
