// Small helpers shared by the example applications: ASCII image rendering
// and common dataset construction.
#pragma once

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "common/array.hpp"
#include "common/types.hpp"

namespace idg::examples {

/// Renders the Stokes-I part of a [4][n][n] image cube as an ASCII density
/// map (downsampled to `cells` x `cells`), normalized to the image peak.
inline void print_ascii_image(const Array3D<cfloat>& image,
                              std::size_t cells = 48,
                              double gamma = 0.5) {
  const std::size_t n = image.dim(1);
  const char* shades = " .:-=+*#%@";
  float peak = 1e-30f;
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x)
      peak = std::max(peak, 0.5f * (image(0, y, x).real() +
                                    image(3, y, x).real()));

  for (std::size_t cy = 0; cy < cells; ++cy) {
    std::cout << "  ";
    for (std::size_t cx = 0; cx < cells; ++cx) {
      float best = 0.0f;
      for (std::size_t y = cy * n / cells; y < (cy + 1) * n / cells; ++y)
        for (std::size_t x = cx * n / cells; x < (cx + 1) * n / cells; ++x)
          best = std::max(best, 0.5f * (image(0, y, x).real() +
                                        image(3, y, x).real()));
      const double v =
          std::pow(std::clamp(static_cast<double>(best / peak), 0.0, 1.0),
                   gamma);
      std::cout << shades[static_cast<int>(v * 9.999)];
    }
    std::cout << '\n';
  }
  std::cout << "  (peak Stokes I = " << peak << ")\n";
}

}  // namespace idg::examples
