// Quickstart: the minimal end-to-end use of the IDG library.
//
//  1. simulate an observation (SKA1-low-like layout, earth-rotation uvw),
//  2. predict visibilities for a small sky of point sources (exact DFT),
//  3. ask for an accuracy contract: params.auto_configure(epsilon) picks
//     the taper, kernel size, subgrid padding and accumulation precision
//     for the requested image error (DESIGN.md §13),
//  4. grid the visibilities and make the taper-corrected dirty image,
//  5. verify the sources reappear at their positions.
//
// Run: ./quickstart [--epsilon E] [--stations N] [--time T] ...
#include <iostream>

#include "common/cli.hpp"
#include "common/imageio.hpp"
#include "example_util.hpp"
#include "idg/accuracy.hpp"
#include "idg/backend.hpp"
#include "idg/image.hpp"
#include "idg/plan.hpp"
#include "kernels/optimized.hpp"
#include "obs/sink.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = parse_standard_options(argc, argv);

  // 1. Observation: stations, baselines, uvw tracks, frequencies.
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = static_cast<int>(opts.get("stations", 14L));
  cfg.nr_timesteps = static_cast<int>(opts.get("time", 64L));
  cfg.nr_channels = static_cast<int>(opts.get("channels", 8L));
  cfg.grid_size = static_cast<std::size_t>(opts.get("grid", 512L));
  cfg.subgrid_size = 24;
  sim::Dataset ds = sim::make_benchmark_dataset_no_vis(cfg);
  std::cout << "observation: " << cfg.describe() << "\n"
            << "field of view: " << ds.image_size << " rad\n\n";

  // 2. A small sky and its exact visibilities.
  const double dl = ds.image_size / static_cast<double>(cfg.grid_size);
  sim::SkyModel sky = {
      {static_cast<float>(60 * dl), static_cast<float>(25 * dl), 1.0f},
      {static_cast<float>(-45 * dl), static_cast<float>(-30 * dl), 0.7f},
      {0.0f, 0.0f, 0.4f},
  };
  auto vis = sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs);

  // 3. IDG parameters: one accuracy knob. auto_configure(epsilon) selects
  // the taper family, kernel size, subgrid padding and accumulation
  // precision so the dirty image is within epsilon of the exact DFT
  // (relative l2 over the inner field); kernel-size/subgrid knobs set by
  // hand stay available but are overridden by the contract.
  const double epsilon = opts.get("epsilon", 1e-3);
  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.auto_configure(epsilon);
  std::cout << "accuracy contract: epsilon = " << epsilon << " -> tier '"
            << accuracy::tier_for(epsilon).name
            << "' (taper " << to_string(params.taper) << ", kernel "
            << params.kernel_size << ", subgrid " << params.subgrid_size
            << ", " << to_string(params.accumulation)
            << " accumulation)\n";
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  std::cout << "plan: " << plan.nr_subgrids() << " subgrids, "
            << plan.avg_visibilities_per_subgrid()
            << " visibilities/subgrid\n";

  // 4. Grid and image (identity A-terms: no direction-dependent effects).
  // --backend selects the execution strategy: "synchronous" (default),
  // "pipelined" (the paper's triple-buffered Fig 7 pipeline) or
  // "resilient[:inner]". The kernel set honouring the contract is named by
  // accuracy::preferred_kernel_set (the LUT sincos path for the preview
  // tier, the reference set — which implements double accumulation — for
  // the tighter tiers).
  // A-terms are sampled on the subgrid raster, so they follow the
  // contract's (possibly padded) params.subgrid_size, not the cfg knob.
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                          params.subgrid_size);
  BackendOptions backend_options =
      parse_backend_spec(opts.get("backend", std::string("synchronous")));
  backend_options.kernels =
      &kernels::kernel_set(accuracy::preferred_kernel_set(params));
  auto backend = make_backend(backend_options, params);
  Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
  obs::AggregateSink metrics;
  backend->grid(plan, ds.uvw.cview(), vis.cview(), aterms.cview(),
                grid.view(), metrics);
  auto dirty = make_dirty_image(grid, plan.nr_planned_visibilities(), params);
  std::cout << "gridded in " << metrics.total_seconds() << " s ("
            << backend->name() << " backend)\n";

  // 5. Optionally save the image, then check the sources.
  if (opts.has("save-pgm")) {
    const std::string path = opts.get("save-pgm", std::string("dirty.pgm"));
    write_pgm(path, stokes_i_plane(dirty));
    std::cout << "wrote " << path << "\n";
  }
  std::cout << "\ndirty image (Stokes I):\n\n";
  examples::print_ascii_image(dirty);
  std::cout << "\nsource recovery:\n";
  for (const auto& src : sky) {
    const std::size_t x = static_cast<std::size_t>(
        std::lround(src.l / dl) + static_cast<long>(cfg.grid_size) / 2);
    const std::size_t y = static_cast<std::size_t>(
        std::lround(src.m / dl) + static_cast<long>(cfg.grid_size) / 2);
    std::cout << "  source at (" << src.l << ", " << src.m << ") rad: "
              << "injected " << src.stokes_i << " Jy, imaged "
              << dirty(0, y, x).real() << " Jy\n";
  }
  return 0;
}
