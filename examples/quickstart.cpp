// Quickstart: the minimal end-to-end use of the IDG library.
//
//  1. simulate an observation (SKA1-low-like layout, earth-rotation uvw),
//  2. predict visibilities for a small sky of point sources (exact DFT),
//  3. build the IDG execution plan,
//  4. grid the visibilities and make the taper-corrected dirty image,
//  5. verify the sources reappear at their positions.
//
// Run: ./quickstart [--stations N] [--time T] ...
#include <iostream>

#include "common/cli.hpp"
#include "common/imageio.hpp"
#include "example_util.hpp"
#include "idg/backend.hpp"
#include "idg/image.hpp"
#include "idg/plan.hpp"
#include "kernels/optimized.hpp"
#include "obs/sink.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts(argc, argv);

  // 1. Observation: stations, baselines, uvw tracks, frequencies.
  sim::BenchmarkConfig cfg;
  cfg.nr_stations = static_cast<int>(opts.get("stations", 14L));
  cfg.nr_timesteps = static_cast<int>(opts.get("time", 64L));
  cfg.nr_channels = static_cast<int>(opts.get("channels", 8L));
  cfg.grid_size = static_cast<std::size_t>(opts.get("grid", 512L));
  cfg.subgrid_size = 24;
  sim::Dataset ds = sim::make_benchmark_dataset_no_vis(cfg);
  std::cout << "observation: " << cfg.describe() << "\n"
            << "field of view: " << ds.image_size << " rad\n\n";

  // 2. A small sky and its exact visibilities.
  const double dl = ds.image_size / static_cast<double>(cfg.grid_size);
  sim::SkyModel sky = {
      {static_cast<float>(60 * dl), static_cast<float>(25 * dl), 1.0f},
      {static_cast<float>(-45 * dl), static_cast<float>(-30 * dl), 0.7f},
      {0.0f, 0.0f, 0.4f},
  };
  auto vis = sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs);

  // 3. IDG parameters and execution plan.
  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = 8;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  std::cout << "plan: " << plan.nr_subgrids() << " subgrids, "
            << plan.avg_visibilities_per_subgrid()
            << " visibilities/subgrid\n";

  // 4. Grid and image (identity A-terms: no direction-dependent effects).
  // --backend selects the execution strategy: "synchronous" (default) or
  // "pipelined" (the paper's triple-buffered Fig 7 pipeline).
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                          cfg.subgrid_size);
  auto backend = make_backend(opts.get("backend", std::string("synchronous")),
                              params, kernels::optimized_kernels());
  Array3D<cfloat> grid(4, params.grid_size, params.grid_size);
  obs::AggregateSink metrics;
  backend->grid(plan, ds.uvw.cview(), vis.cview(), aterms.cview(),
                grid.view(), metrics);
  auto dirty = make_dirty_image(grid, plan.nr_planned_visibilities());
  std::cout << "gridded in " << metrics.total_seconds() << " s ("
            << backend->name() << " backend)\n";

  // 5. Optionally save the image, then check the sources.
  if (opts.has("save-pgm")) {
    const std::string path = opts.get("save-pgm", std::string("dirty.pgm"));
    write_pgm(path, stokes_i_plane(dirty));
    std::cout << "wrote " << path << "\n";
  }
  std::cout << "\ndirty image (Stokes I):\n\n";
  examples::print_ascii_image(dirty);
  std::cout << "\nsource recovery:\n";
  for (const auto& src : sky) {
    const std::size_t x = static_cast<std::size_t>(
        std::lround(src.l / dl) + static_cast<long>(cfg.grid_size) / 2);
    const std::size_t y = static_cast<std::size_t>(
        std::lround(src.m / dl) + static_cast<long>(cfg.grid_size) / 2);
    std::cout << "  source at (" << src.l << ", " << src.m << ") rad: "
              << "injected " << src.stokes_i << " Jy, imaged "
              << dirty(0, y, x).real() << " Jy\n";
  }
  return 0;
}
