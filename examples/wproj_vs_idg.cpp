// Head-to-head: IDG versus traditional W-projection gridding on the same
// simulated observation — prediction accuracy against the exact DFT, plus
// wall-clock and kernel-storage cost (the paper's §VI-E comparison in
// miniature).
//
// Run: ./wproj_vs_idg [--support N] [--subgrid N] ...
#include <iomanip>
#include <iostream>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "idg/image.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "kernels/optimized.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"
#include "sim/predict.hpp"
#include "wproj/gridder.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  Options opts = parse_standard_options(argc, argv);

  sim::BenchmarkConfig cfg;
  cfg.nr_stations = static_cast<int>(opts.get("stations", 10L));
  cfg.nr_timesteps = static_cast<int>(opts.get("time", 64L));
  cfg.nr_channels = 4;
  cfg.grid_size = 256;
  cfg.subgrid_size = static_cast<std::size_t>(opts.get("subgrid", 32L));
  sim::Dataset ds = sim::make_benchmark_dataset_no_vis(cfg);
  std::cout << "observation: " << cfg.describe() << "\n\n";

  // Ground truth: exact prediction of a 3-source sky.
  const double dl = ds.image_size / static_cast<double>(cfg.grid_size);
  sim::SkyModel sky = {
      {static_cast<float>(30 * dl), static_cast<float>(-22 * dl), 1.0f},
      {static_cast<float>(-12 * dl), static_cast<float>(35 * dl), 0.5f},
      {0.0f, 0.0f, 0.25f},
  };
  auto truth = sim::predict_visibilities(sky, ds.uvw, ds.baselines, ds.obs);
  const double rms = sim::rms_amplitude(truth);

  auto model = sim::render_sky_image(sky, cfg.grid_size, ds.image_size);
  auto grid = model_image_to_grid(model);

  Array3D<Visibility> predicted(ds.nr_baselines(), ds.nr_timesteps(),
                                ds.nr_channels());

  // --- IDG ------------------------------------------------------------------
  Parameters params;
  params.grid_size = cfg.grid_size;
  params.subgrid_size = cfg.subgrid_size;
  params.image_size = ds.image_size;
  params.nr_stations = cfg.nr_stations;
  params.kernel_size = cfg.subgrid_size / 2;
  Plan plan(params, ds.uvw, ds.frequencies, ds.baselines);
  auto aterms = sim::make_identity_aterms(1, cfg.nr_stations,
                                          cfg.subgrid_size);
  Processor processor(params, kernels::optimized_kernels());

  Timer t_idg;
  processor.degrid_visibilities(plan, ds.uvw.cview(), grid.cview(),
                                aterms.cview(), predicted.view());
  const double idg_seconds = t_idg.seconds();
  const double idg_err = sim::max_abs_difference(truth, predicted) / rms;

  // --- W-projection ------------------------------------------------------------
  double w_max = 0.0;
  for (const auto& c : ds.uvw)
    w_max = std::max(w_max, std::abs(static_cast<double>(c.w)));
  w_max = w_max / ds.obs.min_wavelength() * 1.01 + 1.0;

  wproj::WprojParameters wp;
  wp.grid_size = cfg.grid_size;
  wp.image_size = ds.image_size;
  wp.kernel.support = static_cast<std::size_t>(opts.get("support", 16L));
  wp.kernel.oversampling = 8;
  wp.kernel.nr_w_planes = 31;
  wp.kernel.w_max = w_max;
  wproj::WprojGridder wpg(wp);

  Timer t_wpg;
  wpg.degrid_visibilities(ds.uvw.cview(), grid.cview(), ds.frequencies,
                          predicted.view());
  const double wpg_seconds = t_wpg.seconds();
  const double wpg_err = sim::max_abs_difference(truth, predicted) / rms;

  // --- report -----------------------------------------------------------------
  std::cout << std::setprecision(4)
            << "prediction vs exact DFT (max error / rms amplitude):\n"
            << "  IDG (subgrid " << params.subgrid_size << "^2):   err "
            << idg_err << ", " << idg_seconds << " s, no kernel storage\n"
            << "  WPG (support " << wp.kernel.support << "^2):   err "
            << wpg_err << ", " << wpg_seconds << " s, "
            << wpg.kernels().storage_bytes() / 1e6 << " MB kernels ("
            << wpg.kernels().construction_seconds() << " s to build)\n\n";
  std::cout << "both algorithms predict the same physics; IDG gets there "
               "without precomputing or storing convolution kernels, and "
               "its cost does not grow when A-terms are enabled "
               "(paper §VI-E).\n";
  return 0;
}
