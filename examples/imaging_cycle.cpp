// Full imaging loop (paper Fig 2): image -> CLEAN -> predict -> subtract,
// iterated until the sky model converges. Demonstrates gridding AND
// degridding working together, and reports the recovered source fluxes.
//
// Run: ./imaging_cycle [--cycles N] [--stations N] ...
//
// The workload itself (dataset, sky, gridding parameters, minor-cycle
// knobs) is the shared job builder in src/server/job.hpp: an `idg-server`
// job with the same knobs produces byte-identical images to this binary —
// the CI server-soak job cmp(1)s the two.
//
// Recovery knobs (DESIGN.md §12): --checkpoint <path> snapshots the loop
// state after every completed major cycle; --resume <path> restarts a
// killed run from such a snapshot, bit-identically to never having
// stopped; --retries N supervises the backend (N failed attempts per work
// group before quarantine); --deadline-ms D aborts the whole run after D
// milliseconds. The CI kill-and-resume smoke drives exactly this binary.
//
// Sharding knobs (DESIGN.md §16): --workers N runs every grid/degrid call
// across N forked worker processes (bit-identical to --workers 0, the
// in-process default); --shards M cuts each call into M shards (default
// 2xN); --heartbeat-ms D replaces a worker silent for D ms. SIGTERM and
// SIGINT (Ctrl-C) both drain the loop at the next safe point, keeping the
// last checkpoint — the CI kill-and-rebalance job SIGKILLs workers and the
// coordinator and byte-compares the results.
#include <csignal>
#include <iostream>
#include <memory>

#include "clean/major_cycle.hpp"
#include "common/cli.hpp"
#include "common/imageio.hpp"
#include "example_util.hpp"
#include "idg/plan.hpp"
#include "idg/processor.hpp"
#include "idg/supervisor.hpp"
#include "kernels/optimized.hpp"
#include "server/job.hpp"
#include "shard/coordinator.hpp"
#include "shard/worker.hpp"
#include "sim/aterm.hpp"
#include "sim/dataset.hpp"

int main(int argc, char** argv) {
  using namespace idg;
  // Worker mode: the shard coordinator re-execs this binary with
  // --idg-shard-worker as argv[1]; everything below is coordinator-only.
  if (const int rc = shard::maybe_run_worker(argc, argv); rc >= 0) return rc;
  Options opts = parse_standard_options(argc, argv);

  server::JobSpec spec;
  spec.nr_stations = static_cast<std::int32_t>(opts.get("stations", 14L));
  spec.nr_timesteps = static_cast<std::int32_t>(opts.get("time", 64L));
  spec.nr_channels = static_cast<std::int32_t>(opts.get("channels", 4L));
  spec.grid_size = static_cast<std::uint32_t>(opts.get("grid", 256L));
  spec.nr_cycles = static_cast<std::uint32_t>(opts.get("cycles", 4L));
  spec.deadline_ms = static_cast<std::uint32_t>(opts.get("deadline-ms", 0L));
  const long retries = opts.get("retries", 0L);
  spec.retries = retries > 0 ? static_cast<std::uint32_t>(retries) : 0;
  server::JobWorkload w = server::build_job_workload(spec);

  sim::BenchmarkConfig cfg;  // mirrors the workload, for the banner only
  cfg.nr_stations = spec.nr_stations;
  cfg.nr_timesteps = spec.nr_timesteps;
  cfg.nr_channels = spec.nr_channels;
  cfg.grid_size = spec.grid_size;
  cfg.subgrid_size = w.params.subgrid_size;
  std::cout << "observation: " << cfg.describe() << "\n\n";

  Plan plan(w.params, w.dataset.uvw, w.dataset.frequencies,
            w.dataset.baselines);
  auto aterms = sim::make_identity_aterms(1, spec.nr_stations,
                                          w.params.subgrid_size);

  std::unique_ptr<GridderBackend> backend;
  const long workers = opts.get("workers", 0L);
  if (workers > 0) {
    shard::ShardConfig sc;
    sc.nr_workers = static_cast<std::size_t>(workers);
    sc.nr_shards = static_cast<std::size_t>(opts.get("shards", 0L));
    sc.heartbeat_ms =
        static_cast<std::uint32_t>(opts.get("heartbeat-ms", 60000L));
    sc.worker_retries = spec.retries;
    sc.kernel_set = "optimized";
    backend = shard::make_sharded_backend(w.params, sc);
    std::cout << "sharded execution: " << sc.nr_workers << " worker(s), "
              << (sc.nr_shards > 0 ? sc.nr_shards : 2 * sc.nr_workers)
              << " shard(s) per call\n";
  } else {
    backend = std::make_unique<Processor>(w.params,
                                          kernels::optimized_kernels());
    if (spec.retries > 0) {
      SupervisorConfig sup;
      sup.max_attempts_per_group = spec.retries;
      backend = make_resilient_backend(std::move(backend), nullptr, sup);
    }
  }
  clean::MajorCycleConfig mc = server::make_major_cycle_config(spec);
  mc.checkpoint_path = opts.get("checkpoint", std::string{});
  mc.resume_path = opts.get("resume", std::string{});
  if (!mc.resume_path.empty()) {
    std::cout << "resuming from checkpoint " << mc.resume_path << "\n";
  }
  if (workers > 0 || !mc.checkpoint_path.empty()) {
    // Graceful drain: SIGTERM or Ctrl-C cancels the loop at its next safe
    // point; the last completed cycle's checkpoint survives for a
    // bit-identical --resume.
    shard::install_sigterm_drain();
    shard::install_drain_signal(SIGINT);
    mc.cancel = &shard::drain_token();
  }

  clean::MajorCycleResult result;
  try {
    result = clean::run_major_cycles(*backend, plan, w.dataset.uvw.cview(),
                                     w.visibilities.cview(), aterms.cview(),
                                     mc);
  } catch (const CancelledError& e) {
    if (shard::drain_requested() && !mc.checkpoint_path.empty()) {
      std::cout << "drained on SIGTERM/SIGINT (" << e.what()
                << "); resume with --resume " << mc.checkpoint_path << "\n";
      return 0;
    }
    throw;
  }

  std::cout << "residual Stokes-I peak per major cycle:\n";
  for (std::size_t c = 0; c < result.peak_history.size(); ++c)
    std::cout << "  cycle " << c + 1 << ": " << result.peak_history[c]
              << " Jy\n";
  std::cout << "total CLEAN components: " << result.total_components << "\n\n";

  if (opts.has("save-pgm")) {
    const std::string stem = opts.get("save-pgm", std::string("cycle"));
    write_pgm(stem + "_model.pgm", stokes_i_plane(result.model_image));
    write_pgm(stem + "_residual.pgm", stokes_i_plane(result.residual_image));
    std::cout << "wrote " << stem << "_model.pgm and " << stem
              << "_residual.pgm\n\n";
  }
  std::cout << "CLEAN model image:\n\n";
  examples::print_ascii_image(result.model_image);

  std::cout << "\nrecovered fluxes (5x5 box around each true source):\n";
  const double dl = w.pixel_scale;
  for (const auto& src : w.sky) {
    const long x =
        std::lround(src.l / dl) + static_cast<long>(spec.grid_size) / 2;
    const long y =
        std::lround(src.m / dl) + static_cast<long>(spec.grid_size) / 2;
    float flux = 0.0f;
    for (long yy = y - 2; yy <= y + 2; ++yy)
      for (long xx = x - 2; xx <= x + 2; ++xx)
        flux += result.model_image(0, static_cast<std::size_t>(yy),
                                   static_cast<std::size_t>(xx))
                    .real();
    std::cout << "  injected " << src.stokes_i << " Jy -> recovered " << flux
              << " Jy\n";
  }

  std::cout << "\ntime per pipeline stage:\n";
  for (const auto& [stage, seconds] : result.times.by_stage())
    std::cout << "  " << stage << ": " << seconds << " s\n";
  return 0;
}
